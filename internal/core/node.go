// Package core implements the SEUSS compute node — the paper's primary
// contribution (§4, §6): a kernel that deploys serverless functions
// from unikernel snapshots.
//
// The node maintains two caches:
//
//   - a snapshot cache: one base runtime snapshot per interpreter plus
//     function-specific snapshots layered on it (snapshot stacks), and
//   - a UC cache: idle, fully-initialized UCs awaiting re-invocation.
//
// Each invocation takes one of three paths (Figure 2):
//
//	hot:  an idle UC for the function exists — import new arguments
//	      into it and run.
//	warm: a function snapshot exists — deploy a UC from it, connect,
//	      pass arguments, run.
//	cold: nothing cached — deploy from the base runtime snapshot,
//	      import and compile the source, capture a function snapshot
//	      for future warm starts, then run.
//
// Memory management follows §6: CoW overcommit is resolved by a trivial
// OOM policy — idle UCs are reclaimed as soon as available physical
// memory drops below a threshold; function snapshots with no active
// UCs are evicted LRU when the snapshot cache itself must shrink.
//
// Failure model (§4): faults are contained to the UC. A UC that
// crashes, exhausts its invocation deadline, or errors mid-run is
// destroyed — never returned to the idle cache, where its dirty
// interpreter state would poison later warm hits — and its immutable
// snapshot redeploys a fresh context on retry. Under memory pressure
// the node degrades in stages (reclaim idle UCs → evict coldest
// function snapshots → serve the request cold) instead of failing it.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"seuss/internal/costs"
	"seuss/internal/entropy"
	"seuss/internal/fault"
	"seuss/internal/hypercall"
	"seuss/internal/interp"
	"seuss/internal/lang"
	"seuss/internal/libos"
	"seuss/internal/mem"
	"seuss/internal/metrics"
	"seuss/internal/netsim"
	"seuss/internal/policy"
	"seuss/internal/sim"
	"seuss/internal/snapshot"
	"seuss/internal/snapstore"
	"seuss/internal/trace"
	"seuss/internal/uc"
)

// Path labels which invocation path served a request.
type Path int

// The three invocation paths of §4, plus the disk tier's lukewarm
// path: the function snapshot is not resident but its encoded diff is
// on local disk, so the node promotes (read + graft) instead of
// replaying the interpreter — cheaper than cold, dearer than warm.
const (
	PathCold Path = iota
	PathWarm
	PathHot
	PathLukewarm
)

var pathNames = [...]string{"cold", "warm", "hot", "lukewarm"}

// String implements fmt.Stringer.
func (p Path) String() string { return pathNames[p] }

// ErrNodeSaturated is returned when an invocation cannot obtain memory
// even after the full degradation ladder (idle reclaim, snapshot
// eviction, cold fallback). Contained: memory may free up; retry.
var ErrNodeSaturated = errors.New("core: node memory saturated")

// ErrUCCrashed is returned when a UC dies mid-invocation (injected or
// real). The UC is destroyed; the function's snapshot is untouched, so
// a retry deploys a fresh context — the §4 containment guarantee.
var ErrUCCrashed = errors.New("core: uc crashed mid-invocation")

// ErrDeadlineExceeded is returned when an invocation exhausts its
// deadline's interpreter-step budget. The runaway UC is destroyed.
var ErrDeadlineExceeded = errors.New("core: invocation deadline exceeded")

// Config parameterizes a Node.
type Config struct {
	// Cores is the worker core count (default: costs.NodeCores).
	Cores int
	// MemoryBytes is the physical memory budget (default:
	// costs.NodeMemoryBytes).
	MemoryBytes int64
	// NetworkAO and InterpreterAO select which anticipatory
	// optimizations run before the base runtime snapshot (both default
	// true; Table 2 ablates them).
	NetworkAO     bool
	InterpreterAO bool
	// DisableAO turns both AOs off (overrides the two flags).
	DisableAO bool
	// OOMThreshold is the fraction of memory below which idle UCs are
	// reclaimed (default 0.02).
	OOMThreshold float64
	// Seed drives the node's deterministic RNG.
	Seed int64
	// Entropy, when non-nil, supplies the host entropy drawn at every UC
	// deploy (restore-time uniqueness, DESIGN.md §14). The shards of a
	// pool share one function, each calling it from its own goroutine, so
	// it must be safe for concurrent use — entropy.NewSharedSource is the
	// standard choice. nil derives a deterministic per-node stream from
	// Seed, keeping tests and the simulation replayable by default;
	// divergence between clones is guaranteed either way by the deploy
	// generation mixed into each draw.
	Entropy func() uint64
	// HTTPHandler services outbound guest requests: it returns the
	// response body and how long the remote end blocks. nil fails
	// guest http.get calls.
	HTTPHandler func(url string) (body string, delay time.Duration, err error)
	// MaxIdlePerFn caps cached idle UCs per function (default 64).
	MaxIdlePerFn int
	// Tracer, when non-nil, records the node's structured event
	// timeline (see internal/trace).
	Tracer *trace.Tracer
	// Runtimes lists the interpreter profiles to boot and snapshot at
	// system initialization (default: nodejs only). The first entry is
	// the default runtime for requests that name none.
	Runtimes []string
	// InvokeDeadline bounds each invocation's guest execution; it is
	// converted to an interpreter step budget (deadline / StepTime) and
	// a UC that exhausts it is destroyed, not recycled. Per-request
	// deadlines (Request.Deadline) override it. 0 = the interpreter's
	// default lifetime budget only.
	InvokeDeadline time.Duration
	// Faults injects deterministic failures at the node's registered
	// fault points (see internal/fault). nil disables injection with
	// zero overhead on the serving path.
	Faults *fault.Injector
	// Metrics, when non-nil, receives the node's pre-registered
	// counters and latency histograms (see internal/metrics). Recording
	// is atomic adds only — safe for the allocation-free hot path. nil
	// disables collection at zero cost (nil-safe methods).
	Metrics *metrics.Recorder
	// SnapStore, when non-nil, is the on-disk snapshot tier: evictions
	// demote encoded diffs into it instead of destroying them, warm
	// misses consult it for a lukewarm restore, and graceful drains
	// flush the resident stacks through it. A pool's shards share one
	// store (it is internally synchronized). nil keeps today's
	// destroy-on-evict behavior.
	SnapStore *snapstore.Store
	// Policy, when non-nil, turns on lifecycle management: PolicyTick
	// expires idle UCs past their keep-alive window, demotes idle
	// lineages to the disk tier (scale-to-zero), and promotes lineages
	// back ahead of predicted recurrences (prewarm). The policy is
	// consulted only from the node's owner goroutine; a shard pool
	// clones it per shard. nil keeps the pressure ladder as the only
	// reclaim trigger — exactly the pre-policy behavior.
	Policy policy.Policy
	// Residency, when non-nil, observes the reaper's lineage residency
	// transitions (scale-to-zero demotions, prewarm promotions). A
	// cluster wires this to its scheduler view so placement stops
	// routing to members whose copy left RAM. Callbacks run on the
	// node's owner goroutine and must not re-enter the node.
	Residency ResidencyListener
}

// ResidencyListener observes lineage residency transitions driven by
// the lifecycle reaper.
type ResidencyListener interface {
	// LineageDemoted fires after the reaper scales key to zero: the
	// resident snapshot was demoted to the disk tier and freed.
	LineageDemoted(key string)
	// LineagePromoted fires after the prewarm scheduler promotes key
	// back into RAM.
	LineagePromoted(key string)
}

func (c Config) withDefaults() Config {
	if c.Cores == 0 {
		c.Cores = costs.NodeCores
	}
	if c.MemoryBytes == 0 {
		c.MemoryBytes = costs.NodeMemoryBytes
	}
	if c.OOMThreshold == 0 {
		c.OOMThreshold = 0.02
	}
	if c.MaxIdlePerFn == 0 {
		c.MaxIdlePerFn = 64
	}
	if len(c.Runtimes) == 0 {
		c.Runtimes = []string{"nodejs"}
	}
	if c.DisableAO {
		c.NetworkAO, c.InterpreterAO = false, false
	}
	return c
}

// Normalized returns the config with defaults applied — the exact
// config a node built from it will run with. Exported for callers that
// derive values from the defaulted form before construction (e.g. a
// shard pool dividing the defaulted memory budget).
func (c Config) Normalized() Config { return c.withDefaults() }

// DefaultConfig returns the paper's configuration: 16 cores, 88 GB,
// both AOs on.
func DefaultConfig() Config {
	return Config{NetworkAO: true, InterpreterAO: true}
}

// Stats counts node activity.
type Stats struct {
	Cold, Warm, Hot   int64
	Lukewarm          int64 // invocations restored from the disk tier
	Errors            int64
	UCsDeployed       int64
	UCsReclaimed      int64 // idle UCs destroyed by the OOM policy
	SnapshotsCaptured int64
	SnapshotsEvicted  int64
	// UCCrashes counts UCs destroyed after a contained mid-invocation
	// fault (crash, deadline, guest error) instead of being recycled.
	UCCrashes int64
	// DeadlinesExceeded counts invocations killed by their step-budget
	// deadline (a subset of UCCrashes).
	DeadlinesExceeded int64
	// The degradation ladder under memory pressure:
	// level 1 — idle UCs reclaimed to make a deploy fit;
	// level 2 — cold function snapshots evicted to make a deploy fit;
	// level 3 — warm deploys abandoned and served cold instead.
	PressureIdleReclaims      int64
	PressureSnapshotEvictions int64
	PressureColdFallbacks     int64
	// FaultsInjected counts fault points that fired on this node.
	FaultsInjected int64
	// The snapshot disk tier: lookups on warm misses, evictions
	// persisted as demotions, diffs grafted back in (lukewarm restores
	// plus boot prewarms).
	TierHits           int64
	TierMisses         int64
	SnapshotsDemoted   int64
	SnapshotsPromoted  int64
	SnapshotsPrewarmed int64
	// Working-set record/replay on the lukewarm path: records written
	// on a lineage's first restore, drift merges, corrupt records
	// dropped, pages bulk-mapped before resume, and how well the record
	// covered what the invocation actually touched.
	WSRecorded        int64
	WSMerged          int64
	WSCorrupt         int64
	WSPrefetchedPages int64
	WSCoverageHits    int64
	WSCoverageMisses  int64
	// The lifecycle policy reaper: keep-alive expirations (idle UCs
	// destroyed plus lineages scaled to zero) and prewarm outcomes.
	PolicyExpirations     int64
	PolicyPrewarms        int64
	PolicyPrewarmMisses   int64
	PolicyPrewarmMisfires int64
}

// Add accumulates o into s (pool/cluster aggregation).
func (s *Stats) Add(o Stats) {
	s.Cold += o.Cold
	s.Warm += o.Warm
	s.Hot += o.Hot
	s.Errors += o.Errors
	s.UCsDeployed += o.UCsDeployed
	s.UCsReclaimed += o.UCsReclaimed
	s.SnapshotsCaptured += o.SnapshotsCaptured
	s.SnapshotsEvicted += o.SnapshotsEvicted
	s.UCCrashes += o.UCCrashes
	s.DeadlinesExceeded += o.DeadlinesExceeded
	s.PressureIdleReclaims += o.PressureIdleReclaims
	s.PressureSnapshotEvictions += o.PressureSnapshotEvictions
	s.PressureColdFallbacks += o.PressureColdFallbacks
	s.FaultsInjected += o.FaultsInjected
	s.Lukewarm += o.Lukewarm
	s.TierHits += o.TierHits
	s.TierMisses += o.TierMisses
	s.SnapshotsDemoted += o.SnapshotsDemoted
	s.SnapshotsPromoted += o.SnapshotsPromoted
	s.SnapshotsPrewarmed += o.SnapshotsPrewarmed
	s.WSRecorded += o.WSRecorded
	s.WSMerged += o.WSMerged
	s.WSCorrupt += o.WSCorrupt
	s.WSPrefetchedPages += o.WSPrefetchedPages
	s.WSCoverageHits += o.WSCoverageHits
	s.WSCoverageMisses += o.WSCoverageMisses
	s.PolicyExpirations += o.PolicyExpirations
	s.PolicyPrewarms += o.PolicyPrewarms
	s.PolicyPrewarmMisses += o.PolicyPrewarmMisses
	s.PolicyPrewarmMisfires += o.PolicyPrewarmMisfires
}

// managedUC pairs a UC with its host environment so later operations
// (hot invokes, OOM reclaim) can re-bind the environment to whichever
// process performs them, plus the UC's network identity: the worker
// core it is resident on and the proxy port mapping the kernel uses to
// reach its driver (§6 Networking — TCP destination ports are the
// unique key mapping packets to an active UC).
type managedUC struct {
	u    *uc.UC
	e    *env
	core int
	port int
}

type idleUC struct {
	mu   *managedUC
	key  string
	last sim.Time
}

type fnEntry struct {
	snap *snapshot.Snapshot
	last sim.Time
	// ws is the lineage's decoded working-set record — the pages its
	// first lukewarm restore touched, bulk-mapped before resume on
	// later restores. nil arms recording: the next successful lukewarm
	// invocation harvests its dirty set into a fresh record.
	ws []uint64
}

// Node is one SEUSS compute node.
//
// Ownership contract: a Node is NOT safe for concurrent use. All of its
// methods — Invoke, Stats, CachedSnapshots, IdleUCs, MemStats, the
// adopt/export surface — must be called from the single goroutine that
// owns the node's sim.Engine (in a sharded pool, the shard goroutine;
// see internal/shardpool). Cross-goroutine access must be routed
// through that owner, not performed directly.
type Node struct {
	eng   *sim.Engine
	cfg   Config
	store *mem.Store
	cores *sim.Resource
	proxy *netsim.Proxy

	runtimeSnap  *snapshot.Snapshot            // default runtime (first profile)
	runtimeSnaps map[string]*snapshot.Snapshot // one per supported interpreter
	fnSnaps      map[string]*fnEntry
	idle         map[string][]*idleUC
	idleCount    int
	nextCore     int

	// prewarmDue schedules policy-predicted promotions: key → the
	// instant (duration since engine start) PolicyTick should promote
	// the scaled-to-zero lineage back into RAM. An invocation arriving
	// first cancels the entry.
	prewarmDue map[string]time.Duration

	// entropySrc backs deploy-time entropy draws when cfg.Entropy is
	// nil. Plain (non-atomic) state is fine under the node ownership
	// contract: one goroutine owns all node methods.
	entropySrc *entropy.Source

	stats Stats
}

// newNodeShell builds the node structure around an existing store; the
// caller is responsible for populating the runtime snapshots.
func newNodeShell(eng *sim.Engine, cfg Config, store *mem.Store) *Node {
	return &Node{
		eng:          eng,
		cfg:          cfg,
		store:        store,
		cores:        sim.NewResource(eng, cfg.Cores),
		proxy:        netsim.NewProxy(cfg.Cores),
		fnSnaps:      make(map[string]*fnEntry),
		idle:         make(map[string][]*idleUC),
		prewarmDue:   make(map[string]time.Duration),
		runtimeSnaps: make(map[string]*snapshot.Snapshot, len(cfg.Runtimes)),
		entropySrc:   entropy.NewSource(uint64(cfg.Seed)),
	}
}

// drawEntropy returns the next host entropy value for a UC deploy:
// the caller-supplied source when configured, else the node's
// deterministic per-seed stream.
func (n *Node) drawEntropy() uint64 {
	if n.cfg.Entropy != nil {
		return n.cfg.Entropy()
	}
	return n.entropySrc.Next()
}

// BootRuntime performs system initialization for one interpreter
// runtime inside store: boot the unikernel, load the interpreter, start
// the invocation driver, apply the configured AOs, and capture the base
// runtime snapshot ("runtime/<name>"). Initialization happens before
// the experiment clock matters and charges no engine time.
//
// It is exported so a sharded pool can boot the runtime image once,
// export it through the snapshot codec, and hydrate every shard from
// the encoded bytes instead of re-running AO per shard.
func BootRuntime(store *mem.Store, cfg Config, name string) (*snapshot.Snapshot, error) {
	cfg = cfg.withDefaults() // fold DisableAO into the per-AO flags
	prof, err := interp.ProfileByName(name)
	if err != nil {
		return nil, fmt.Errorf("core: system init: %w", err)
	}
	initEnv := &libos.CountingEnv{}
	// The boot UC draws its RNG seed from host entropy like every other
	// deploy path — never the compile-time constant it used to share
	// with every node ever booted. Deterministic from Seed unless the
	// caller supplies a live source.
	stub := hypercall.NewStubHost()
	stub.EntropyState = entropy.Splitmix64(uint64(cfg.Seed) ^ 0xB007)
	var host hypercall.Host = stub
	if cfg.Entropy != nil {
		host = entropyHost{Host: stub, draw: cfg.Entropy}
	}
	boot, err := uc.BootFreshProfile(store, host, initEnv, prof)
	if err != nil {
		return nil, fmt.Errorf("core: system init (%s): %w", name, err)
	}
	if cfg.NetworkAO {
		if err := boot.Guest().Unikernel().WarmNetwork(); err != nil {
			return nil, err
		}
	}
	if cfg.InterpreterAO {
		if err := boot.Guest().WarmInterpreter(); err != nil {
			return nil, err
		}
	}
	snap, err := boot.Capture("runtime/"+name, uc.TriggerPCDriverListen)
	if err != nil {
		return nil, fmt.Errorf("core: runtime snapshot (%s): %w", name, err)
	}
	return snap, nil
}

// entropyHost overrides just the Entropy draw of an inner hypercall
// host with a caller-supplied source (BootRuntime runs before any node
// exists to route through).
type entropyHost struct {
	hypercall.Host
	draw func() uint64
}

// Entropy implements hypercall.Host.
func (h entropyHost) Entropy() uint64 { return h.draw() }

// NewNode builds a node and performs system initialization: boot the
// unikernel into the interpreter, run the invocation driver, apply the
// configured AOs, and capture the base runtime snapshot.
func NewNode(eng *sim.Engine, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	n := newNodeShell(eng, cfg, mem.NewStore(cfg.MemoryBytes))
	for _, name := range cfg.Runtimes {
		snap, err := BootRuntime(n.store, cfg, name)
		if err != nil {
			return nil, err
		}
		cfg.Metrics.Inc(metrics.CtrReseedsBoot)
		n.runtimeSnaps[name] = snap
		if n.runtimeSnap == nil {
			n.runtimeSnap = snap
		}
	}
	return n, nil
}

// NewNodeFromSnapshots builds a node whose base runtime snapshots are
// already resident in store — typically materialized from encoded diffs
// (snapshot.Materialize) rather than booted in place. This is how a
// sharded pool pays AO and runtime boot once: boot + capture on a
// template, export, then hydrate one node per shard from the bytes.
//
// snaps must contain one entry per configured runtime, keyed by runtime
// name ("nodejs"), each carrying its guest payload. The first
// configured runtime becomes the default. The node takes ownership of
// store and the snapshots.
func NewNodeFromSnapshots(eng *sim.Engine, cfg Config, store *mem.Store, snaps map[string]*snapshot.Snapshot) (*Node, error) {
	cfg = cfg.withDefaults()
	n := newNodeShell(eng, cfg, store)
	for _, name := range cfg.Runtimes {
		snap, ok := snaps[name]
		if !ok {
			return nil, fmt.Errorf("core: hydrate: no snapshot for runtime %q", name)
		}
		if _, isPayload := snap.Payload().(uc.Payload); !isPayload {
			return nil, fmt.Errorf("core: hydrate: runtime %q snapshot has no guest payload", name)
		}
		n.runtimeSnaps[name] = snap
		if n.runtimeSnap == nil {
			n.runtimeSnap = snap
		}
	}
	return n, nil
}

// runtimeSnapFor resolves a request's runtime to its base snapshot.
func (n *Node) runtimeSnapFor(runtime string) (*snapshot.Snapshot, error) {
	if runtime == "" {
		return n.runtimeSnap, nil
	}
	snap, ok := n.runtimeSnaps[runtime]
	if !ok {
		return nil, fmt.Errorf("core: runtime %q not configured", runtime)
	}
	return snap, nil
}

// Engine returns the node's simulation engine.
func (n *Node) Engine() *sim.Engine { return n.eng }

// RuntimeSnapshot returns the default runtime's base snapshot.
func (n *Node) RuntimeSnapshot() *snapshot.Snapshot { return n.runtimeSnap }

// Runtimes returns the configured interpreter names.
func (n *Node) Runtimes() []string {
	out := make([]string, 0, len(n.runtimeSnaps))
	for _, name := range n.cfg.Runtimes {
		if _, ok := n.runtimeSnaps[name]; ok {
			out = append(out, name)
		}
	}
	return out
}

// Stats returns a copy of the node's counters.
func (n *Node) Stats() Stats { return n.stats }

// MemStats returns the physical memory accounting.
func (n *Node) MemStats() mem.Stats { return n.store.Stats() }

// Store exposes the physical memory store (harness use).
func (n *Node) Store() *mem.Store { return n.store }

// CachedSnapshots returns the number of function snapshots cached.
func (n *Node) CachedSnapshots() int { return len(n.fnSnaps) }

// IdleUCs returns the number of cached idle UCs.
func (n *Node) IdleUCs() int { return n.idleCount }

// Cores returns the node's core resource (harness instrumentation).
func (n *Node) Cores() *sim.Resource { return n.cores }

// Proxy exposes the per-core network proxy (instrumentation).
func (n *Node) Proxy() *netsim.Proxy { return n.proxy }

// env builds the host environment one invocation runs against: CPU
// charges contend for the node's cores; blocking does not hold a core.
// A UC's env outlives the process that deployed it, so every node
// operation re-binds the env to the process performing it.
type env struct {
	n *Node
	p *sim.Proc
}

// bind attaches the env to the process about to operate on the UC.
func (e *env) bind(p *sim.Proc) { e.p = p }

// ChargeCPU implements libos.Env. With no bound process (teardown from
// harness code outside the simulation) the charge is dropped.
func (e *env) ChargeCPU(d time.Duration) {
	if d <= 0 || e.p == nil {
		return
	}
	e.n.cores.Use(e.p, d)
}

// Block implements libos.Env.
func (e *env) Block(d time.Duration) {
	if e.p == nil {
		return
	}
	e.p.Sleep(d)
}

// Now implements libos.Env.
func (e *env) Now() time.Duration { return time.Duration(e.n.eng.Now()) }

// HTTPGet implements libos.Env: the request leaves through the per-core
// proxy (masqueraded), crosses the external network, and blocks until
// the remote end replies.
func (e *env) HTTPGet(url string) (string, error) {
	if e.n.cfg.HTTPHandler == nil {
		return "", errors.New("core: no external network configured")
	}
	port, err := e.n.proxy.MapOutbound(0, 0)
	if err != nil {
		return "", err
	}
	defer e.n.proxy.Unmap(port)
	// Fault point: the proxy drops the outbound packet. The flow is
	// absorbed, not failed — one retransmit timeout, then it proceeds.
	if e.n.cfg.Faults.Fire(fault.PointProxyDrop) {
		e.n.stats.FaultsInjected = faultsInjected(e.n.cfg.Faults)
		e.n.cfg.Metrics.Inc(metrics.CtrFaultsInjected)
		e.p.Sleep(costs.ExternalHTTPLatency)
	}
	e.p.Sleep(costs.ExternalHTTPLatency)
	body, delay, err := e.n.cfg.HTTPHandler(url)
	if err != nil {
		return "", err
	}
	if delay > 0 {
		e.p.Sleep(delay)
	}
	e.p.Sleep(costs.ExternalHTTPLatency)
	return body, nil
}

// Output implements libos.Env (guest console lines are dropped at the
// node level; the platform returns results explicitly).
func (e *env) Output(string) {}

// Request is one invocation request as delivered to the node.
type Request struct {
	// Key uniquely identifies the function (client account + name).
	Key string
	// Source is the function's code; needed only on cold paths.
	Source string
	// Args is the invocation argument JSON document.
	Args string
	// Runtime names the interpreter to run on ("" = the node's default).
	Runtime string
	// Deadline bounds this invocation's guest execution (0 = the
	// node's configured InvokeDeadline, if any). Exhausting it destroys
	// the UC and returns a contained ErrDeadlineExceeded.
	Deadline time.Duration
}

// Result is the node's reply.
type Result struct {
	// ID is the invocation's request ID: unique across every node in
	// the process (one atomic sequence), carried on the invocation's
	// trace span so a response correlates with its timeline events.
	ID uint64
	// Path records which invocation path served the request.
	Path Path
	// Output is the driver's JSON response.
	Output string
	// Latency is the node-side service time (excludes platform
	// overheads), matching Table 1's measurement boundary.
	Latency time.Duration
}

// invokeSeq issues request IDs. Process-global (like uc.nextID) so IDs
// stay unique across the shards of a pool, which each own a node. It
// starts at the boot-generation base, not zero, so request IDs also
// stay unique across process restarts sharing a snapshot directory.
var invokeSeq atomic.Uint64

func init() { invokeSeq.Store(entropy.IDBase()) }

// Per-path metric indices, so finish records without branching.
var (
	pathCounters = [...]metrics.Counter{
		PathCold:     metrics.CtrColdInvocations,
		PathWarm:     metrics.CtrWarmInvocations,
		PathHot:      metrics.CtrHotInvocations,
		PathLukewarm: metrics.CtrLukewarmInvocations,
	}
	pathHists = [...]metrics.Hist{
		PathCold:     metrics.HistColdLatency,
		PathWarm:     metrics.HistWarmLatency,
		PathHot:      metrics.HistHotLatency,
		PathLukewarm: metrics.HistLukewarmLatency,
	}
	reseedCounters = [...]metrics.Counter{
		PathCold:     metrics.CtrReseedsCold,
		PathWarm:     metrics.CtrReseedsWarm,
		PathHot:      metrics.CtrReseedsWarm, // hot never deploys; DeployIdle counts as warm
		PathLukewarm: metrics.CtrReseedsLukewarm,
	}
)

// invokeError accounts one failed invocation.
func (n *Node) invokeError() {
	n.stats.Errors++
	n.cfg.Metrics.Inc(metrics.CtrInvokeErrors)
}

// Invoke services one invocation inside the calling simulated process.
func (n *Node) Invoke(p *sim.Proc, req Request) (Result, error) {
	start := n.eng.Now()
	id := invokeSeq.Add(1)
	n.reclaimIfNeeded(p)

	// Hot path: an idle UC for this function.
	if mu := n.takeIdle(req.Key); mu != nil {
		n.cfg.Metrics.Inc(metrics.CtrIdleUCHits)
		out, err := n.runOn(p, mu, req)
		return n.finish(start, id, req.Key, PathHot, 0, out, err)
	}

	// Warm path: deploy from the function snapshot. On a miss, consult
	// the disk tier: a hit there promotes the encoded diff (read, CRC
	// check, graft onto the resident base) and serves the request
	// lukewarm — no interpreter replay, unlike cold.
	path := PathWarm
	entry, ok := n.fnSnaps[req.Key]
	if ok {
		n.cfg.Metrics.Inc(metrics.CtrSnapshotStackHits)
	} else {
		n.cfg.Metrics.Inc(metrics.CtrSnapshotStackMisses)
		if entry = n.promoteForInvoke(p, req.Key, id); entry != nil {
			ok, path = true, PathLukewarm
		}
	}
	if ok {
		entry.last = n.eng.Now()
		// A lukewarm deploy replays the lineage's recorded working set:
		// the pages the first restore faulted on-demand are bulk-mapped
		// before the first instruction. Warm deploys are left alone —
		// the snapshot is resident and its faults are cheap.
		var ws []uint64
		if path == PathLukewarm {
			ws = entry.ws
		}
		mu, prefetched, err := n.deploy(p, entry.snap, ws, path)
		if err == nil {
			if prefetched > 0 {
				n.stats.WSPrefetchedPages += int64(prefetched)
				n.cfg.Metrics.AddCounter(metrics.CtrWSPrefetchedPages, int64(prefetched))
				n.cfg.Tracer.Record(trace.Event{
					At: time.Duration(n.eng.Now()), Kind: trace.KindWorkingSet, ID: id, Key: req.Key,
					Detail: fmt.Sprintf("prefetched %d pages", prefetched),
				})
			}
			if cerr := mu.u.Guest().Connect(); cerr != nil {
				n.destroyUC(mu)
				n.invokeError()
				return Result{}, cerr
			}
			gen := mu.u.Guest().Unikernel().DeployGeneration()
			out, rerr := n.runOn(p, mu, req)
			if path == PathLukewarm && rerr == nil {
				n.harvestWorkingSet(mu, req.Key, entry, id)
			}
			return n.finish(start, id, req.Key, path, gen, out, rerr)
		}
		if !errors.Is(err, ErrNodeSaturated) || req.Source == "" {
			n.invokeError()
			return Result{}, err
		}
		// Degradation ladder, level 3: the warm deploy cannot fit even
		// after reclaim and eviction. Drop this function's snapshot
		// (freeing its diff pages) and serve the request cold from the
		// much-shared base runtime image instead of failing it.
		n.dropSnapshot(p, req.Key)
		n.stats.PressureColdFallbacks++
		n.cfg.Metrics.Inc(metrics.CtrPressureColdFallbacks)
		n.cfg.Tracer.Record(trace.Event{
			At: time.Duration(n.eng.Now()), Kind: trace.KindFault, ID: id, Key: req.Key,
			Detail: "pressure: warm deploy saturated; serving cold",
		})
	}

	// Cold path: deploy from the runtime snapshot, import and compile,
	// capture the function snapshot, run.
	base, err := n.runtimeSnapFor(req.Runtime)
	if err != nil {
		n.invokeError()
		return Result{}, err
	}
	mu, _, err := n.deploy(p, base, nil, PathCold)
	if err != nil {
		n.invokeError()
		return Result{}, err
	}
	if err := mu.u.Guest().Connect(); err != nil {
		n.destroyUC(mu)
		n.invokeError()
		return Result{}, err
	}
	if err := mu.u.Guest().ImportAndCompile(req.Source); err != nil {
		n.destroyUC(mu)
		n.invokeError()
		return Result{}, fmt.Errorf("core: import %q: %w", req.Key, err)
	}
	n.captureFnSnapshot(p, mu.u, req.Key)
	gen := mu.u.Guest().Unikernel().DeployGeneration()
	out, err := n.runOn(p, mu, req)
	return n.finish(start, id, req.Key, PathCold, gen, out, err)
}

func (n *Node) finish(start sim.Time, id uint64, key string, path Path, gen uint64, out string, err error) (Result, error) {
	if err != nil {
		n.invokeError()
		n.cfg.Tracer.Record(trace.Event{
			At: time.Duration(start), Dur: time.Duration(n.eng.Now() - start),
			Kind: trace.KindInvoke, ID: id, Key: key, Path: path.String(),
			Detail: "error: " + err.Error(), Reseed: gen,
		})
		return Result{}, err
	}
	latency := time.Duration(n.eng.Now() - start)
	n.cfg.Tracer.Record(trace.Event{
		At: time.Duration(start), Dur: latency,
		Kind: trace.KindInvoke, ID: id, Key: key, Path: path.String(),
		Reseed: gen,
	})
	n.cfg.Metrics.Inc(pathCounters[path])
	n.cfg.Metrics.Observe(pathHists[path], latency)
	switch path {
	case PathCold:
		n.stats.Cold++
	case PathWarm:
		n.stats.Warm++
	case PathLukewarm:
		n.stats.Lukewarm++
	default:
		n.stats.Hot++
	}
	if pol := n.cfg.Policy; pol != nil {
		nowD := time.Duration(n.eng.Now())
		pol.RecordInvoke(key, nowD)
		// Touch the lineage so SnapshotKeepAlive ages from the last
		// invocation on every path (hot serves bypass the entry).
		if e, ok := n.fnSnaps[key]; ok {
			e.last = n.eng.Now()
		}
		// A real arrival supersedes any scheduled prewarm.
		delete(n.prewarmDue, key)
		if ka := pol.KeepAlive(key, nowD); ka >= 0 {
			n.cfg.Metrics.Observe(metrics.HistPolicyKeepalive, ka)
		}
	}
	return Result{
		ID:      id,
		Path:    path,
		Output:  out,
		Latency: latency,
	}, nil
}

// deploy creates a UC from a snapshot, bulk-mapping the working-set
// pages first when the caller supplies a record (nil ws is the plain
// on-demand deploy). On memory pressure it walks the degradation
// ladder instead of failing outright: reclaim idle UCs one at a time
// (level 1, LRU-first — they redeploy cheaply from their snapshots),
// then evict the coldest function snapshots (level 2 — future warm
// starts are lost, nothing else). Only when both levels are exhausted
// does it report saturation (level 3, the cold fallback, belongs to
// Invoke, which knows the request).
func (n *Node) deploy(p *sim.Proc, snap *snapshot.Snapshot, ws []uint64, path Path) (*managedUC, int, error) {
	e := &env{n: n, p: p}
	host := &ucNetHost{Host: hypercall.NewStubHost(), n: n, port: new(int)}
	u, prefetched, err := uc.DeployPrefetched(snap, host, e, ws)
	for errors.Is(err, mem.ErrOutOfMemory) && n.reclaimOneIdle(p) {
		n.stats.PressureIdleReclaims++
		n.cfg.Metrics.Inc(metrics.CtrPressureIdleReclaims)
		u, prefetched, err = uc.DeployPrefetched(snap, host, e, ws)
	}
	for errors.Is(err, mem.ErrOutOfMemory) && n.evictOneSnapshot(p) {
		n.stats.PressureSnapshotEvictions++
		n.cfg.Metrics.Inc(metrics.CtrPressureSnapshotEvictions)
		u, prefetched, err = uc.DeployPrefetched(snap, host, e, ws)
	}
	if err != nil {
		if errors.Is(err, mem.ErrOutOfMemory) {
			return nil, 0, fault.Contain(ErrNodeSaturated)
		}
		return nil, 0, err
	}
	n.stats.UCsDeployed++
	n.cfg.Metrics.Inc(metrics.CtrUCsDeployed)
	if u.Recycled() {
		n.cfg.Metrics.Inc(metrics.CtrDeployKitHits)
	} else {
		n.cfg.Metrics.Inc(metrics.CtrDeployKitMisses)
	}
	// Restore-time uniqueness (DESIGN.md §14): the deploy drew fresh
	// entropy and a new generation into the clone's RNG seed. The
	// entropy-stale fault point undoes the re-draw — reproducing the
	// duplicated-stream bug — so the divergence tests can prove they
	// would catch a regression.
	if n.cfg.Faults.Fire(fault.PointEntropyStale) {
		u.Guest().RewindToStaleSeed()
		n.stats.FaultsInjected = faultsInjected(n.cfg.Faults)
		n.cfg.Metrics.Inc(metrics.CtrFaultsInjected)
		n.cfg.Tracer.Record(trace.Event{
			At: time.Duration(n.eng.Now()), Kind: trace.KindFault, Key: snap.Name(),
			Detail: "entropy-stale: deploy kept the snapshot's RNG seed",
		})
	} else {
		ctr := reseedCounters[path]
		if u.Recycled() {
			ctr = metrics.CtrReseedsKit
		}
		n.cfg.Metrics.Inc(ctr)
	}
	mu := &managedUC{u: u, e: e, core: n.nextCore % n.cfg.Cores}
	n.nextCore++
	// Install the UC's port mapping on its resident core so kernel↔UC
	// traffic (connection setup, arguments, results) routes to it.
	if port, perr := n.proxy.MapInternal(u.ID(), mu.core); perr == nil {
		mu.port = port
		*host.port = port
	}
	return mu, prefetched, nil
}

// ucNetHost is the hypercall host the node gives each UC: non-network
// calls hit the standard stub; network reads and writes route through
// the node's per-core proxy under the UC's port mapping, so proxy
// traffic counters reflect real guest activity.
type ucNetHost struct {
	hypercall.Host
	n    *Node
	port *int
}

// NetWrite implements hypercall.Host.
func (h *ucNetHost) NetWrite(frame []byte) error {
	if *h.port != 0 {
		h.n.proxy.RouteOutbound(*h.port)
	}
	return h.Host.NetWrite(frame)
}

// NetRead implements hypercall.Host.
func (h *ucNetHost) NetRead() ([]byte, bool) {
	if *h.port != 0 {
		h.n.proxy.RouteInbound(*h.port)
	}
	return h.Host.NetRead()
}

// Entropy implements hypercall.Host: deploy-time draws come from the
// node's entropy source, not the per-UC stub — every stub starts at
// the same state, but clones of one snapshot must not.
func (h *ucNetHost) Entropy() uint64 { return h.n.drawEntropy() }

// destroyUC tears a managed UC down, removing its proxy mappings.
func (n *Node) destroyUC(mu *managedUC) {
	n.proxy.UnmapUC(mu.u.ID())
	mu.u.Destroy()
}

// captureFnSnapshot records a function snapshot on the cold path,
// evicting old snapshots if the cache is memory-bound. Failure to
// capture is not fatal — the invocation proceeds, only future warm
// starts are lost.
func (n *Node) captureFnSnapshot(p *sim.Proc, u *uc.UC, key string) {
	n.evictSnapshotsIfNeeded(p)
	snap, err := u.Capture("fn/"+key, uc.TriggerPCPostCompile)
	if err != nil {
		return
	}
	n.fnSnaps[key] = &fnEntry{snap: snap, last: n.eng.Now()}
	n.stats.SnapshotsCaptured++
	n.cfg.Metrics.Inc(metrics.CtrSnapshotsCaptured)
	n.cfg.Tracer.Record(trace.Event{
		At: time.Duration(n.eng.Now()), Kind: trace.KindCapture, Key: key,
		Detail: fmt.Sprintf("%.1f MB diff", float64(snap.DiffBytes())/1e6),
	})
}

// runOn performs the shared invocation tail on a ready UC and caches it
// as idle afterwards.
//
// Containment invariant: a UC whose invocation returned an error — a
// crash, a deadline kill, a guest fault — is destroyed here, NEVER
// returned to the idle cache. Its interpreter state is dirty (half-run
// function, exhausted step budget) and would poison later warm hits;
// the function's immutable snapshot is what retries redeploy from.
func (n *Node) runOn(p *sim.Proc, mu *managedUC, req Request) (string, error) {
	mu.e.bind(p)
	mu.u.SetRunning()

	// Thread the invocation deadline into the interpreter's step
	// budget. With no deadline the default lifetime budget is restored,
	// so a prior deadlined run on this UC leaves no residue.
	deadline := req.Deadline
	if deadline == 0 {
		deadline = n.cfg.InvokeDeadline
	}
	if deadline > 0 {
		steps := int64(deadline / costs.StepTime)
		if steps < 1 {
			steps = 1
		}
		mu.u.Guest().LimitSteps(steps)
	} else {
		mu.u.Guest().LimitSteps(lang.DefaultStepBudget)
	}

	// Fault point: the UC crashes mid-invocation. Containment per §4 —
	// discard the context, keep the snapshot.
	if n.cfg.Faults.Fire(fault.PointUCCrash) {
		n.cfg.Metrics.Inc(metrics.CtrFaultsInjected)
		n.containFault(mu, req.Key, "injected uc crash")
		return "", fault.Contain(ErrUCCrashed)
	}

	out, err := mu.u.Guest().Invoke(req.Args)
	if err != nil {
		n.containFault(mu, req.Key, err.Error())
		if errors.Is(err, lang.ErrTooManySteps) && deadline > 0 {
			n.stats.DeadlinesExceeded++
			n.cfg.Metrics.Inc(metrics.CtrDeadlinesExceeded)
			return "", fault.Contain(fmt.Errorf("%w after %v: %w", ErrDeadlineExceeded, deadline, err))
		}
		return "", fault.Contain(fmt.Errorf("%w: %v", ErrUCCrashed, err))
	}
	n.putIdle(p, req.Key, mu)
	return out, nil
}

// containFault destroys a faulted UC and records the containment.
func (n *Node) containFault(mu *managedUC, key, detail string) {
	n.destroyUC(mu)
	n.stats.UCCrashes++
	n.cfg.Metrics.Inc(metrics.CtrUCCrashes)
	n.stats.FaultsInjected = faultsInjected(n.cfg.Faults)
	n.cfg.Tracer.Record(trace.Event{
		At: time.Duration(n.eng.Now()), Kind: trace.KindFault, Key: key, Detail: detail,
	})
}

// faultsInjected mirrors the injector's fired count into Stats.
func faultsInjected(in *fault.Injector) int64 { return int64(in.TotalFired()) }

// takeIdle pops a cached idle UC for the function.
func (n *Node) takeIdle(key string) *managedUC {
	list := n.idle[key]
	if len(list) == 0 {
		return nil
	}
	entry := list[len(list)-1] // reuse the most recently used (warmest)
	n.idle[key] = list[:len(list)-1]
	n.idleCount--
	return entry.mu
}

// putIdle caches a UC for hot reuse. At the MaxIdlePerFn cap the key's
// LRU idle UC is evicted in favor of the incoming (warmest) one, the
// eviction is accounted as a reclaim, the lifecycle policy hears about
// the pressure, and — when a disk tier is attached — the lineage is
// demote-flushed so the displaced state keeps a lukewarm path back.
// (Previously the incoming UC was silently destroyed: no stat, no
// metric, no policy signal, no tier copy.)
func (n *Node) putIdle(p *sim.Proc, key string, mu *managedUC) {
	mu.u.SetIdle()
	if n.cfg.MaxIdlePerFn < 0 {
		// Negative cap disables the idle cache entirely (a test knob,
		// not pressure) — destroy the UC without reclaim accounting.
		n.destroyUC(mu)
		return
	}
	list := n.idle[key]
	if len(list) >= n.cfg.MaxIdlePerFn && len(list) > 0 {
		victim := list[0]
		copy(list, list[1:])
		list[len(list)-1] = &idleUC{mu: mu, key: key, last: n.eng.Now()}
		victim.mu.e.bind(p)
		n.destroyUC(victim.mu)
		n.stats.UCsReclaimed++
		n.cfg.Metrics.Inc(metrics.CtrUCsReclaimed)
		n.notePressure(key)
		if st := n.cfg.SnapStore; st != nil && !st.Has("fn/"+key) {
			if e, ok := n.fnSnaps[key]; ok {
				n.demoteSnapshot(p, e.snap)
			}
		}
		n.cfg.Tracer.Record(trace.Event{
			At: time.Duration(n.eng.Now()), Kind: trace.KindReclaim, Key: key,
			Detail: "idle cap: LRU idle UC evicted for the incoming one",
		})
		return
	}
	n.idle[key] = append(list, &idleUC{mu: mu, key: key, last: n.eng.Now()})
	n.idleCount++
}

// notePressure tells the lifecycle policy key lost idle state to
// memory pressure rather than natural idleness.
func (n *Node) notePressure(key string) {
	if pol := n.cfg.Policy; pol != nil {
		pol.RecordPressure(key, time.Duration(n.eng.Now()))
	}
}

// reclaimIfNeeded applies the §6 OOM policy: reclaim idle UCs as soon
// as available memory drops below the threshold.
func (n *Node) reclaimIfNeeded(p *sim.Proc) {
	if n.store.Budget() == 0 {
		return
	}
	thresholdFrames := int64(float64(n.store.Budget()/mem.PageSize) * n.cfg.OOMThreshold)
	for n.store.Available() < thresholdFrames && n.reclaimOneIdle(p) {
	}
}

// reclaimAll destroys every idle UC (last-resort memory recovery). A
// nil proc is allowed for harness-side teardown; destruction costs are
// then dropped.
func (n *Node) reclaimAll(p *sim.Proc) {
	for n.reclaimOneIdle(p) {
	}
}

// reclaimOneIdle destroys the least recently used idle UC; false if
// none remain.
func (n *Node) reclaimOneIdle(p *sim.Proc) bool {
	var oldestKey string
	var oldestIdx int
	var oldest *idleUC
	for key, list := range n.idle {
		for i, entry := range list {
			if oldest == nil || entry.last < oldest.last ||
				(entry.last == oldest.last && entry.mu.u.ID() < oldest.mu.u.ID()) {
				oldest, oldestKey, oldestIdx = entry, key, i
			}
		}
	}
	if oldest == nil {
		return false
	}
	list := n.idle[oldestKey]
	n.idle[oldestKey] = append(list[:oldestIdx], list[oldestIdx+1:]...)
	if len(n.idle[oldestKey]) == 0 {
		delete(n.idle, oldestKey)
	}
	n.idleCount--
	oldest.mu.e.bind(p)
	n.destroyUC(oldest.mu)
	n.stats.UCsReclaimed++
	n.cfg.Metrics.Inc(metrics.CtrUCsReclaimed)
	n.notePressure(oldestKey)
	n.cfg.Tracer.Record(trace.Event{
		At: time.Duration(n.eng.Now()), Kind: trace.KindReclaim, Key: oldestKey,
	})
	return true
}

// evictSnapshotsIfNeeded shrinks the function-snapshot cache LRU when
// available memory is below threshold. Only snapshots with no active
// UCs and no children may be deleted (§6); idle UCs deployed from a
// candidate are destroyed first.
func (n *Node) evictSnapshotsIfNeeded(p *sim.Proc) {
	if n.store.Budget() == 0 {
		return
	}
	thresholdFrames := int64(float64(n.store.Budget()/mem.PageSize) * n.cfg.OOMThreshold)
	for n.store.Available() < thresholdFrames {
		if !n.evictOneSnapshot(p) && !n.reclaimOneIdle(p) {
			return
		}
	}
}

// evictOneSnapshot deletes the least recently used deletable function
// snapshot; false if none qualifies.
func (n *Node) evictOneSnapshot(p *sim.Proc) bool {
	var lruKey string
	var lru *fnEntry
	for key, entry := range n.fnSnaps {
		if entry.snap.Children() > 0 {
			continue
		}
		if lru == nil || entry.last < lru.last || (entry.last == lru.last && key < lruKey) {
			lru, lruKey = entry, key
		}
	}
	if lru == nil {
		return false
	}
	// Destroy idle UCs deployed from the candidate so it becomes
	// deletable.
	if list, ok := n.idle[lruKey]; ok {
		for _, entry := range list {
			entry.mu.e.bind(p)
			n.destroyUC(entry.mu)
			n.idleCount--
			n.stats.UCsReclaimed++
			n.cfg.Metrics.Inc(metrics.CtrUCsReclaimed)
		}
		delete(n.idle, lruKey)
		n.notePressure(lruKey)
	}
	if lru.snap.ActiveUCs() > 0 {
		return false // a live invocation depends on it; try later
	}
	// Demote-before-delete: persist the encoded diff so the next miss
	// is lukewarm, not cold. Export must precede Delete (a deleted
	// snapshot cannot export); a failed demote degrades to plain
	// destruction.
	n.demoteSnapshot(p, lru.snap)
	if err := lru.snap.Delete(); err != nil {
		return false
	}
	delete(n.fnSnaps, lruKey)
	n.stats.SnapshotsEvicted++
	n.cfg.Metrics.Inc(metrics.CtrSnapshotsEvicted)
	n.cfg.Tracer.Record(trace.Event{
		At: time.Duration(n.eng.Now()), Kind: trace.KindEvict, Key: lruKey,
	})
	return true
}

// dropSnapshot force-evicts one function's snapshot (degradation
// ladder level 3): destroy its idle UCs, then delete the snapshot if
// nothing live depends on it. Reports whether the snapshot is gone.
func (n *Node) dropSnapshot(p *sim.Proc, key string) bool {
	entry, ok := n.fnSnaps[key]
	if !ok {
		return false
	}
	if list, ok := n.idle[key]; ok {
		for _, idle := range list {
			idle.mu.e.bind(p)
			n.destroyUC(idle.mu)
			n.idleCount--
			n.stats.UCsReclaimed++
			n.cfg.Metrics.Inc(metrics.CtrUCsReclaimed)
		}
		delete(n.idle, key)
		n.notePressure(key)
	}
	if entry.snap.ActiveUCs() > 0 || entry.snap.Children() > 0 {
		return false
	}
	n.demoteSnapshot(p, entry.snap)
	if err := entry.snap.Delete(); err != nil {
		return false
	}
	delete(n.fnSnaps, key)
	n.stats.SnapshotsEvicted++
	n.cfg.Metrics.Inc(metrics.CtrSnapshotsEvicted)
	n.cfg.Tracer.Record(trace.Event{
		At: time.Duration(n.eng.Now()), Kind: trace.KindEvict, Key: key,
	})
	return true
}

// ---- Snapshot disk tier: demotion and promotion ----

// chargeTier charges the virtual time of one tier transfer against p
// (nil for harness-side work outside the simulation).
func (n *Node) chargeTier(p *sim.Proc, base, perPage time.Duration, pages int) {
	if p == nil {
		return
	}
	n.cores.Use(p, base+time.Duration(pages)*perPage)
}

// demoteSnapshot writes a snapshot's encoded diff into the disk tier —
// before eviction deletes it, or as a drain-time flush that keeps the
// snapshot resident. Failure, including a full tier, is absorbed: the
// caller proceeds with plain destruction exactly as before the tier
// existed, never erroring the invocation.
func (n *Node) demoteSnapshot(p *sim.Proc, snap *snapshot.Snapshot) bool {
	st := n.cfg.SnapStore
	if st == nil || snap == nil {
		return false
	}
	var buf bytes.Buffer
	if err := snap.Export(&buf); err != nil {
		return false
	}
	base := ""
	if b := snap.Base(); b != nil {
		base = b.Name()
	}
	if err := st.Put(snap.Name(), base, buf.Bytes()); err != nil {
		return false
	}
	n.chargeTier(p, costs.SnapDemoteBase, costs.SnapDemotePerPage, snap.DiffPages())
	n.stats.SnapshotsDemoted++
	n.cfg.Metrics.Inc(metrics.CtrTierDemotions)
	n.cfg.Tracer.Record(trace.Event{
		At: time.Duration(n.eng.Now()), Kind: trace.KindDemote, Key: snap.Name(),
		Detail: fmt.Sprintf("%.1f MB diff", float64(snap.DiffBytes())/1e6),
	})
	return true
}

// residentSnapshot resolves a snapshot name against what is in RAM:
// the runtime base images and the function-snapshot cache.
func (n *Node) residentSnapshot(name string) *snapshot.Snapshot {
	for _, snap := range n.runtimeSnaps {
		if snap.Name() == name {
			return snap
		}
	}
	if key := strings.TrimPrefix(name, "fn/"); key != name {
		if e, ok := n.fnSnaps[key]; ok {
			return e.snap
		}
	}
	return nil
}

// promote restores one encoded diff from the disk tier: read (single-
// flight, CRC-verified by the store), decode, graft onto the resident
// base, reattach the guest payload. A demoted base is promoted first,
// recursively, so a whole snapshot stack restores as a unit. Promoted
// "fn/" snapshots are installed into the function-snapshot cache; kind
// distinguishes a lukewarm restore from a boot prewarm.
func (n *Node) promote(p *sim.Proc, name string, id uint64, kind metrics.Counter) (*snapshot.Snapshot, error) {
	st := n.cfg.SnapStore
	if st == nil {
		return nil, snapstore.ErrNotFound
	}
	data, err := st.Get(name)
	if err != nil {
		n.stats.TierMisses++
		n.cfg.Metrics.Inc(metrics.CtrTierMisses)
		return nil, err
	}
	n.stats.TierHits++
	n.cfg.Metrics.Inc(metrics.CtrTierHits)
	hdr, err := snapshot.PeekWireHeader(data)
	if err != nil {
		// The store's CRC passed but the codec refused the bytes (a
		// foreign or stale format) — the entry can never promote; drop it.
		st.Delete(name)
		return nil, err
	}
	if hdr.BaseName == "" {
		return nil, fmt.Errorf("core: promote %q: root diffs are not promotable", name)
	}
	base := n.residentSnapshot(hdr.BaseName)
	if base == nil {
		if base, err = n.promote(p, hdr.BaseName, id, kind); err != nil {
			return nil, fmt.Errorf("core: promote %q: base: %w", name, err)
		}
	}
	snap, payloadBytes, err := snapshot.GraftWire(data, base)
	if err != nil {
		return nil, err
	}
	if len(payloadBytes) > 0 {
		payload, perr := uc.DecodePayload(payloadBytes)
		if perr != nil {
			snap.Delete()
			return nil, fmt.Errorf("core: promote %q: payload: %w", name, perr)
		}
		snap.SetPayload(payload)
	}
	n.chargeTier(p, costs.SnapPromoteBase, costs.SnapPromotePerPage, hdr.Pages)
	if key := strings.TrimPrefix(name, "fn/"); key != name {
		n.fnSnaps[key] = &fnEntry{snap: snap, last: n.eng.Now()}
	}
	n.stats.SnapshotsPromoted++
	if kind == metrics.CtrTierPromotionsPrewarm {
		n.stats.SnapshotsPrewarmed++
	}
	n.cfg.Metrics.Inc(kind)
	n.cfg.Tracer.Record(trace.Event{
		At: time.Duration(n.eng.Now()), Kind: trace.KindPromote, ID: id, Key: name,
		Detail: fmt.Sprintf("%.1f MB diff", float64(snap.DiffBytes())/1e6),
	})
	return snap, nil
}

// promoteForInvoke is the lukewarm branch of Invoke: on a warm miss it
// attempts a promotion and returns the installed cache entry. nil —
// tier miss, damaged entry, or a graft the memory budget refused —
// sends the request down the cold path.
func (n *Node) promoteForInvoke(p *sim.Proc, key string, id uint64) *fnEntry {
	if n.cfg.SnapStore == nil || key == "" {
		return nil
	}
	// A graft materializes the diff into fresh frames; make the same
	// headroom the capture path does so promotion under memory pressure
	// demotes a colder stack instead of exhausting the store mid-run.
	n.evictSnapshotsIfNeeded(p)
	if _, err := n.promote(p, "fn/"+key, id, metrics.CtrTierPromotionsLukewarm); err != nil {
		return nil
	}
	// The graft consumed frames; restore the headroom the guest's own
	// run-time allocations depend on. Under extreme pressure the victim
	// may be the snapshot just promoted — the miss then degrades to a
	// cold rebuild, which is still an answer, not an error.
	n.evictSnapshotsIfNeeded(p)
	entry := n.fnSnaps[key]
	if entry != nil {
		entry.ws = n.loadWorkingSet("fn/"+key, id)
	}
	return entry
}

// loadWorkingSet fetches the lineage's working-set record from the
// disk tier, decoded — usually straight from the store's in-memory
// sidecar cache, so a prefetched restore pays no extra file read. nil
// means no usable record — missing, or corrupt and therefore dropped —
// which arms recording on the coming invocation; it is never an error.
func (n *Node) loadWorkingSet(name string, id uint64) []uint64 {
	// Fault point: the sidecar corrupts on read. The injected path
	// re-reads the raw bytes, flips a bit, and runs the real decode so
	// the CRC catches the damage exactly as a torn disk read would; the
	// restore degrades to on-demand faulting.
	if n.cfg.Faults.Fire(fault.PointWSCorrupt) {
		n.cfg.Metrics.Inc(metrics.CtrFaultsInjected)
		n.stats.FaultsInjected = faultsInjected(n.cfg.Faults)
		data, err := n.cfg.SnapStore.GetWorkingSet(name)
		if err != nil {
			return nil
		}
		data = append([]byte(nil), data...)
		data[len(data)/2] ^= 0x80
		if _, derr := snapshot.DecodeWorkingSet(data); derr == nil {
			return nil // bit flip survived the CRC? drop the record anyway
		}
		n.stats.WSCorrupt++
		n.cfg.Metrics.Inc(metrics.CtrWSRecordsCorrupt)
		n.cfg.Tracer.Record(trace.Event{
			At: time.Duration(n.eng.Now()), Kind: trace.KindWorkingSet, ID: id, Key: name,
			Detail: "corrupt record dropped; restoring on demand",
		})
		return nil
	}
	ws, ok := n.cfg.SnapStore.GetWorkingSetPages(name)
	if !ok {
		return nil
	}
	return ws
}

// harvestWorkingSet runs after a successful lukewarm invocation, while
// the UC's address space still holds the run's dirty set (resume
// writes plus invocation writes — exactly the fault storm a later
// restore would pay). With no record it persists one; with a record it
// measures coverage and union-merges when drift exceeds an eighth of
// the recorded set, so records grow toward the lineage's true working
// set and never thrash on per-invocation noise. Every failure path is
// silent: the sidecar is an optimization, not state.
func (n *Node) harvestWorkingSet(mu *managedUC, key string, entry *fnEntry, id uint64) {
	st := n.cfg.SnapStore
	if st == nil {
		return
	}
	observed := mu.u.Space().DirtyPages()
	if len(observed) == 0 {
		return
	}
	name := "fn/" + key
	if len(entry.ws) == 0 {
		data, err := snapshot.EncodeWorkingSet(observed)
		if err != nil || st.PutWorkingSet(name, data) != nil {
			return
		}
		entry.ws = observed
		n.stats.WSRecorded++
		n.cfg.Metrics.Inc(metrics.CtrWSRecordsRecorded)
		n.cfg.Tracer.Record(trace.Event{
			At: time.Duration(n.eng.Now()), Kind: trace.KindWorkingSet, ID: id, Key: name,
			Detail: fmt.Sprintf("recorded %d pages", len(observed)),
		})
		return
	}
	misses := wsMissCount(observed, entry.ws)
	hits := len(observed) - misses
	n.stats.WSCoverageHits += int64(hits)
	n.stats.WSCoverageMisses += int64(misses)
	n.cfg.Metrics.AddCounter(metrics.CtrWSCoverageHits, int64(hits))
	n.cfg.Metrics.AddCounter(metrics.CtrWSCoverageMisses, int64(misses))
	if misses <= len(entry.ws)/8 {
		return
	}
	merged := snapshot.MergeWorkingSets(entry.ws, observed)
	data, err := snapshot.EncodeWorkingSet(merged)
	if err != nil || st.PutWorkingSet(name, data) != nil {
		return
	}
	entry.ws = merged
	n.stats.WSMerged++
	n.cfg.Metrics.Inc(metrics.CtrWSRecordsMerged)
	n.cfg.Tracer.Record(trace.Event{
		At: time.Duration(n.eng.Now()), Kind: trace.KindWorkingSet, ID: id, Key: name,
		Detail: fmt.Sprintf("merged %d misses into %d-page record", misses, len(merged)),
	})
}

// wsMissCount counts pages in observed absent from ws (both sorted
// ascending) — the drift a record failed to cover.
func wsMissCount(observed, ws []uint64) int {
	misses, j := 0, 0
	for _, page := range observed {
		for j < len(ws) && ws[j] < page {
			j++
		}
		if j >= len(ws) || ws[j] != page {
			misses++
		}
	}
	return misses
}

// PromoteLineage restores one lineage from the disk tier without
// serving a request — the boot-time prewarm. Already-resident lineages
// are left untouched. name is the tier key ("fn/<key>").
func (n *Node) PromoteLineage(p *sim.Proc, name string) error {
	if n.residentSnapshot(name) != nil {
		return nil
	}
	_, err := n.promote(p, name, 0, metrics.CtrTierPromotionsPrewarm)
	return err
}

// FlushSnapshots demotes every resident function snapshot into the
// disk tier without deleting it — the graceful-drain persistence pass.
// Returns how many entries were flushed (unchanged content re-flushes
// are metadata-only in the store).
func (n *Node) FlushSnapshots(p *sim.Proc) int {
	count := 0
	for _, entry := range n.fnSnaps {
		if n.demoteSnapshot(p, entry.snap) {
			count++
		}
	}
	return count
}

// DeployIdle deploys a UC from the base runtime snapshot and leaves it
// idle (no function imported) — the Table 3 density and creation-rate
// unit of work.
func (n *Node) DeployIdle(p *sim.Proc) (*uc.UC, error) {
	e := &env{n: n, p: p}
	host := &ucNetHost{Host: hypercall.NewStubHost(), n: n, port: new(int)}
	u, err := uc.Deploy(n.runtimeSnap, host, e)
	if err != nil {
		return nil, err
	}
	n.stats.UCsDeployed++
	n.cfg.Metrics.Inc(metrics.CtrUCsDeployed)
	ctr := metrics.CtrReseedsWarm
	if u.Recycled() {
		ctr = metrics.CtrReseedsKit
	}
	n.cfg.Metrics.Inc(ctr)
	return u, nil
}
