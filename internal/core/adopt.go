package core

import (
	"fmt"
	"io"
	"sort"

	"seuss/internal/libos"
	"seuss/internal/sim"
	"seuss/internal/snapshot"
	"seuss/internal/uc"
)

// HasSnapshot reports whether a function snapshot for key is cached.
func (n *Node) HasSnapshot(key string) bool {
	_, ok := n.fnSnaps[key]
	return ok
}

// HasIdleUC reports whether a hot-path UC for key is cached.
func (n *Node) HasIdleUC(key string) bool {
	return len(n.idle[key]) > 0
}

// SnapshotKeys returns the cached function snapshot keys in sorted
// order — what the node reports in a scheduler gossip round.
func (n *Node) SnapshotKeys() []string {
	keys := make([]string, 0, len(n.fnSnaps))
	for k := range n.fnSnaps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FlushLineage demotes one cached function snapshot to the disk tier
// (metadata-only when the tier already holds identical bytes) so a
// fabric fetch can read its encoded layers. Reports whether the
// snapshot is now in the tier.
func (n *Node) FlushLineage(p *sim.Proc, key string) bool {
	e, ok := n.fnSnaps[key]
	if !ok {
		return false
	}
	return n.demoteSnapshot(p, e.snap)
}

// SnapshotDiffBytes returns the cached snapshot's diff size, or 0.
func (n *Node) SnapshotDiffBytes(key string) int64 {
	if e, ok := n.fnSnaps[key]; ok {
		return e.snap.DiffBytes()
	}
	return 0
}

// ExportSnapshot serializes a cached function snapshot's diff (pages +
// guest payload) for migration — the sender side of §9's distributed
// cache.
func (n *Node) ExportSnapshot(key string, w io.Writer) error {
	e, ok := n.fnSnaps[key]
	if !ok {
		return fmt.Errorf("core: export: no snapshot for %q", key)
	}
	return e.snap.Export(w)
}

// AdoptDiff grafts a migrated snapshot diff onto this node's base
// runtime snapshot — the receiver side of §9's distributed cache. The
// shipped pages become local frames; the guest payload is decoded and
// attached so deployments rehydrate normally. No virtual time is
// charged here: the caller accounts the wire transfer.
func (n *Node) AdoptDiff(p *sim.Proc, key string, diff *snapshot.ImportedDiff) error {
	if _, ok := n.fnSnaps[key]; ok {
		return nil
	}
	n.reclaimIfNeeded(p)
	snap, err := snapshot.Graft(diff, n.runtimeSnap)
	if err != nil {
		return fmt.Errorf("core: adopt diff %q: %w", key, err)
	}
	payload, err := uc.DecodePayload(diff.PayloadBytes)
	if err != nil {
		snap.Delete()
		return fmt.Errorf("core: adopt diff %q: payload: %w", key, err)
	}
	snap.SetPayload(payload)
	n.fnSnaps[key] = &fnEntry{snap: snap, last: n.eng.Now()}
	n.stats.SnapshotsCaptured++
	return nil
}

// AdoptSnapshot installs a function snapshot received from another node
// — the §9 distributed-cache migration. Unikernel snapshots are
// read-only and every UC shares one network identity, so a snapshot
// "can be cloned and deployed across machines with similar hardware
// profiles": the sender ships the page-level diff, and the receiver
// grafts it onto its own (identical) base runtime snapshot.
//
// The graft replays the deterministic import into a local UC with no
// virtual time charged (the pages arrive over the wire; the caller
// charges transfer time separately), then captures the local function
// snapshot. Memory effects — frames, page tables, budget — are real.
func (n *Node) AdoptSnapshot(p *sim.Proc, key, source string) (bool, error) {
	if _, ok := n.fnSnaps[key]; ok {
		return false, nil
	}
	n.reclaimIfNeeded(p)
	// Silent local rebuild: a throwaway environment absorbs the time
	// charges, mirroring that the state arrives as bytes, not as
	// re-execution.
	silent := &libos.CountingEnv{}
	u, err := uc.Deploy(n.runtimeSnap, nil, silent)
	if err != nil {
		return false, fmt.Errorf("core: adopt %q: %w", key, err)
	}
	if err := u.Guest().Connect(); err != nil {
		u.Destroy()
		return false, err
	}
	if err := u.Guest().ImportAndCompile(source); err != nil {
		u.Destroy()
		return false, fmt.Errorf("core: adopt %q: %w", key, err)
	}
	snap, err := u.Capture("fn/"+key, uc.TriggerPCPostCompile)
	if err != nil {
		u.Destroy()
		return false, err
	}
	u.Destroy()
	n.fnSnaps[key] = &fnEntry{snap: snap, last: n.eng.Now()}
	n.stats.SnapshotsCaptured++
	return true, nil
}
