// Package pagetable implements x86-64-style 4-level page tables over
// simulated physical frames.
//
// SEUSS captures snapshots and deploys unikernel contexts by direct
// manipulation of hardware page tables (§6): deployment is a shallow
// copy of a snapshot's page-table structure, writes are tracked with
// dirty bits, and faults are resolved by allocating a new page, cloning
// a page from the backing snapshot stack, or installing a read-only
// mapping into the stack. This package reproduces those operations
// bit-for-bit in simulation:
//
//   - A virtual address space is a radix tree of 512-entry nodes
//     (PML4 → PDPT → PD → PT) mapping 48-bit canonical addresses.
//   - Interior nodes are reference counted and shared copy-on-write
//     between address spaces: Clone copies only the root, so deploying
//     a UC from a 100 MB snapshot touches one node.
//   - Leaf entries carry Present/Writable/Dirty/Accessed bits plus a
//     software CoW bit; stores to CoW pages clone the frame, stores to
//     unmapped pages allocate demand-zero frames, and every store sets
//     the dirty bit and lands on the address space's dirty list — the
//     exact state snapshot capture consumes.
//
// The structures themselves are recycled: page-table nodes and address
// space shells released by Release/privatize return to a per-lineage
// free pool (created by New, inherited by every Clone), and the dirty
// list keeps its storage across ClearDirty cycles. Combined with the
// frame pool in package mem, a deploy→fault→capture cycle is
// allocation-free in steady state. Lineages are shard-local
// (shared-nothing), so the pools need no locking.
package pagetable

import (
	"errors"
	"fmt"
	"sort"

	"seuss/internal/mem"
)

// Flags are per-leaf-entry permission and status bits.
type Flags uint8

const (
	// FlagPresent marks the entry as mapped.
	FlagPresent Flags = 1 << iota
	// FlagWritable allows stores without a fault.
	FlagWritable
	// FlagUser allows ring-3 (UC) access; all UC mappings carry it.
	FlagUser
	// FlagAccessed is set by any load or store (hardware A bit).
	FlagAccessed
	// FlagDirty is set by any store (hardware D bit).
	FlagDirty
	// FlagCoW is the software copy-on-write bit: the entry references a
	// frame owned by a snapshot; the first store clones it.
	FlagCoW

	// flagDirtyListed is a software-only bit recording that the page's
	// VA is on the space's dirty list — the invariant that lets the
	// list be an append-only slice (reused across captures) instead of
	// a map rebuilt per cycle, with no duplicate entries.
	flagDirtyListed Flags = 1 << 7
)

const (
	levels     = 4
	entriesPer = 512
	indexBits  = 9
	indexMask  = entriesPer - 1
	// MaxVirtual is one past the highest mappable virtual address
	// (48-bit canonical lower half).
	MaxVirtual = uint64(1) << 48
	// spanMask covers the bytes mapped by one PT-level node (2 MB).
	spanMask = uint64(entriesPer*mem.PageSize - 1)
)

const (
	// maxPooledNodes bounds the per-lineage node free list (8192 nodes
	// ≈ 100 MB of mapped-address capacity; beyond that, let the GC
	// have them).
	maxPooledNodes = 8192
	// maxPooledSpaces bounds recycled address-space shells.
	maxPooledSpaces = 512
)

// ErrBadAddress is returned for virtual addresses outside the canonical
// range or not page-aligned where alignment is required.
var ErrBadAddress = errors.New("pagetable: bad virtual address")

// ErrNotMapped is returned when an operation requires an existing
// mapping.
var ErrNotMapped = errors.New("pagetable: address not mapped")

// index extracts the radix index for the given level (3 = PML4 … 0 = PT).
func index(va uint64, level int) int {
	return int((va >> (mem.PageShift + indexBits*level)) & indexMask)
}

// PageBase returns va rounded down to its page base.
func PageBase(va uint64) uint64 { return va &^ uint64(mem.PageSize-1) }

type entry struct {
	child *node      // interior levels
	frame *mem.Frame // leaf level
	flags Flags
}

type node struct {
	level   int
	refs    int32
	frame   *mem.Frame // accounting: the node itself occupies one frame
	entries [entriesPer]entry
}

// structPool recycles page-table nodes and address-space shells within
// one lineage (a root space plus every space Cloned from it,
// transitively). Single-goroutine by the shard ownership contract.
type structPool struct {
	nodes  []*node
	spaces []*AddressSpace
}

func (p *structPool) putNode(n *node) {
	if p == nil || len(p.nodes) >= maxPooledNodes {
		return
	}
	p.nodes = append(p.nodes, n)
}

func (p *structPool) getSpace() *AddressSpace {
	if p == nil || len(p.spaces) == 0 {
		return &AddressSpace{}
	}
	n := len(p.spaces)
	as := p.spaces[n-1]
	p.spaces[n-1] = nil
	p.spaces = p.spaces[:n-1]
	return as
}

// FaultKind classifies resolved page faults, mirroring §6's three
// resolution semantics.
type FaultKind int

const (
	// FaultDemandZero: store to an unmapped page; a fresh zero frame is
	// allocated.
	FaultDemandZero FaultKind = iota
	// FaultCoW: store to a read-only CoW page; the frame is cloned.
	FaultCoW
	// FaultSharedMap: load of a page present only in the backing
	// snapshot stack; resolved with a read-only mapping (counted by the
	// snapshot layer).
	FaultSharedMap
)

// FaultStats counts faults resolved since the address space was created
// or stats were reset. The paper's Table 1 reports "pages copied" per
// invocation path; CoW+DemandZero is that number.
type FaultStats struct {
	DemandZero  int
	CoW         int
	SharedMap   int
	TableClones int // interior nodes privatized by CoW-on-write paths
	// Prefetched counts pages resolved by PrefetchWritable — the
	// working-set bulk-map path. Deliberately NOT part of Copied():
	// the libos bills Copied() deltas at the per-fault rate, while
	// prefetched pages are charged once, in bulk, at the far cheaper
	// batched-walk rate (costs.WSPrefetchPerPage).
	Prefetched int
}

// Copied returns the number of private pages created by faults.
func (f FaultStats) Copied() int { return f.DemandZero + f.CoW }

// AddressSpace is one virtual address space: a UC's, or the immutable
// space held by a snapshot.
type AddressSpace struct {
	st    *mem.Store
	root  *node
	dirty []uint64 // page-base VAs written since last ClearDirty; dedup via flagDirtyListed
	// Faults accumulates fault-resolution counts; see FaultStats.
	Faults FaultStats
	mapped int // present leaf entries reachable (maintained incrementally)
	frozen bool
	pool   *structPool
	// One-entry software TLB for the write-fault path: the PT node that
	// resolved the last faultForWrite. A burst of faults within one
	// 2 MB span walks (and privatizes) the node once, then hits here.
	// Invalidated by Clone — the source's nodes become shared and the
	// next write must re-privatize — and by Release.
	cacheBase uint64
	cachePT   *node
	cacheOK   bool
}

// New returns an empty address space backed by st. The space owns a
// fresh structure pool, inherited by every space cloned from it.
func New(st *mem.Store) (*AddressSpace, error) {
	pool := &structPool{}
	root, err := newNode(st, pool, levels-1)
	if err != nil {
		return nil, err
	}
	return &AddressSpace{st: st, root: root, pool: pool}, nil
}

func newNode(st *mem.Store, pool *structPool, level int) (*node, error) {
	f, err := st.Alloc()
	if err != nil {
		return nil, err
	}
	if pool != nil {
		if n := len(pool.nodes); n > 0 {
			nd := pool.nodes[n-1]
			pool.nodes[n-1] = nil
			pool.nodes = pool.nodes[:n-1]
			nd.level, nd.refs, nd.frame = level, 1, f
			return nd, nil
		}
	}
	return &node{level: level, refs: 1, frame: f}, nil
}

// Backing returns the physical memory store behind this space.
func (as *AddressSpace) Backing() *mem.Store { return as.st }

// Freeze marks the space immutable: further stores panic. Snapshots
// freeze their spaces; sharing is then always safe.
func (as *AddressSpace) Freeze() { as.frozen = true }

// Frozen reports whether the space is immutable.
func (as *AddressSpace) Frozen() bool { return as.frozen }

// MappedPages returns the number of present leaf mappings.
func (as *AddressSpace) MappedPages() int { return as.mapped }

// Clone returns a new address space sharing this one's entire tree:
// only the root node is copied; children are reference counted. This is
// the paper's "shallow copy of snapshot page table structure" — the
// cost of deploying a UC is independent of the snapshot's size.
//
// The source's leaf entries are inherited as-is, so the source must
// have been downgraded to read-only CoW (SetCoWAll) and frozen first;
// the snapshot layer enforces this. Cloning a space with writable
// entries would alias writable frames between spaces.
func (as *AddressSpace) Clone() (*AddressSpace, error) {
	root, err := newNode(as.st, as.pool, levels-1)
	if err != nil {
		return nil, err
	}
	for i := range as.root.entries {
		e := as.root.entries[i]
		if e.child != nil {
			e.child.refs++
		}
		root.entries[i] = e
	}
	// Our previously-private path nodes are now reachable from the
	// clone: the next write fault must re-walk and re-privatize rather
	// than scribble into a node the clone shares.
	as.cacheOK, as.cachePT = false, nil
	cp := as.pool.getSpace()
	*cp = AddressSpace{
		st:     as.st,
		root:   root,
		dirty:  cp.dirty[:0], // keep recycled storage
		mapped: as.mapped,
		pool:   as.pool,
	}
	return cp, nil
}

// privatize returns a private copy of n (refs==1), cloning it if shared.
// Child references are adjusted; the caller must install the result in
// the parent entry.
func (as *AddressSpace) privatize(n *node) (*node, error) {
	if n.refs == 1 {
		return n, nil
	}
	cp, err := newNode(as.st, as.pool, n.level)
	if err != nil {
		return nil, err
	}
	for i := range n.entries {
		e := n.entries[i]
		if e.child != nil {
			e.child.refs++
		}
		if e.frame != nil {
			as.st.IncRef(e.frame)
		}
		cp.entries[i] = e
	}
	releaseNode(as.st, as.pool, n)
	as.Faults.TableClones++
	return cp, nil
}

// releaseNode drops one reference; at zero it releases children and the
// node's accounting frame and recycles the node into the pool.
func releaseNode(st *mem.Store, pool *structPool, n *node) {
	n.refs--
	if n.refs > 0 {
		return
	}
	for i := range n.entries {
		e := &n.entries[i]
		if e.child != nil {
			releaseNode(st, pool, e.child)
		}
		if e.frame != nil {
			st.DecRef(e.frame)
		}
	}
	st.DecRef(n.frame)
	n.frame = nil
	n.entries = [entriesPer]entry{}
	pool.putNode(n)
}

// Release frees the address space: every shared node and frame loses one
// reference, and the shell itself is recycled into the lineage pool.
// The space must not be used afterwards.
func (as *AddressSpace) Release() {
	if as.root == nil {
		return
	}
	releaseNode(as.st, as.pool, as.root)
	as.root = nil
	as.cacheOK, as.cachePT = false, nil
	if pool := as.pool; pool != nil && len(pool.spaces) < maxPooledSpaces {
		dirty := as.dirty[:0]
		*as = AddressSpace{dirty: dirty}
		pool.spaces = append(pool.spaces, as)
	}
}

// walk descends to the leaf node containing va. If build is true,
// missing interior nodes are created and shared nodes on the path are
// privatized (CoW of the table structure itself). Returns the PT-level
// node, or nil if absent and !build.
func (as *AddressSpace) walk(va uint64, build bool) (*node, error) {
	if va >= MaxVirtual {
		return nil, ErrBadAddress
	}
	n := as.root
	for level := levels - 1; level > 0; level-- {
		idx := index(va, level)
		e := &n.entries[idx]
		if e.child == nil {
			if !build {
				return nil, nil
			}
			child, err := newNode(as.st, as.pool, level-1)
			if err != nil {
				return nil, err
			}
			e.child = child
		} else if build && e.child.refs > 1 {
			cp, err := as.privatize(e.child)
			if err != nil {
				return nil, err
			}
			e.child = cp
		}
		n = e.child
	}
	return n, nil
}

// MapFrame installs frame at page-aligned va with the given flags,
// taking a reference on the frame. An existing mapping is replaced (its
// frame reference dropped).
func (as *AddressSpace) MapFrame(va uint64, f *mem.Frame, flags Flags) error {
	if as.frozen {
		panic("pagetable: mutation of frozen address space")
	}
	if va%mem.PageSize != 0 {
		return ErrBadAddress
	}
	pt, err := as.walk(va, true)
	if err != nil {
		return err
	}
	e := &pt.entries[index(va, 0)]
	listed := e.flags & flagDirtyListed // a replaced mapping stays on the dirty list
	if e.frame != nil {
		as.st.DecRef(e.frame)
	} else {
		as.mapped++
	}
	as.st.IncRef(f)
	e.frame = f
	e.flags = (flags &^ flagDirtyListed) | FlagPresent | listed
	return nil
}

// Unmap removes the mapping at va if present, dropping the frame
// reference.
func (as *AddressSpace) Unmap(va uint64) error {
	if as.frozen {
		panic("pagetable: mutation of frozen address space")
	}
	if va%mem.PageSize != 0 {
		return ErrBadAddress
	}
	pt, err := as.walk(va, true)
	if err != nil {
		return err
	}
	if pt == nil {
		return ErrNotMapped
	}
	e := &pt.entries[index(va, 0)]
	if e.frame == nil {
		return ErrNotMapped
	}
	if e.flags&flagDirtyListed != 0 {
		for i, d := range as.dirty {
			if d == va {
				as.dirty[i] = as.dirty[len(as.dirty)-1]
				as.dirty = as.dirty[:len(as.dirty)-1]
				break
			}
		}
	}
	as.st.DecRef(e.frame)
	*e = entry{}
	as.mapped--
	return nil
}

// Translate returns the frame and flags mapped at va's page, or ok=false.
// It does not set the accessed bit (use Load/Store for access
// semantics). The software dirty-list bookkeeping bit is masked out.
func (as *AddressSpace) Translate(va uint64) (*mem.Frame, Flags, bool) {
	pt, err := as.walk(PageBase(va), false)
	if err != nil || pt == nil {
		return nil, 0, false
	}
	e := pt.entries[index(va, 0)]
	if e.frame == nil {
		return nil, 0, false
	}
	return e.frame, e.flags &^ flagDirtyListed, true
}

// Load copies memory at va into dst, crossing page boundaries as
// needed. Unmapped pages read as zeros (the shared zero page). Load
// does not set accessed bits: leaf nodes may be shared with frozen
// snapshots, and nothing in the capture path consumes the A bit.
func (as *AddressSpace) Load(va uint64, dst []byte) error {
	for len(dst) > 0 {
		if va >= MaxVirtual {
			return ErrBadAddress
		}
		off := int(va % mem.PageSize)
		n := mem.PageSize - off
		if n > len(dst) {
			n = len(dst)
		}
		pt, err := as.walk(PageBase(va), false)
		if err != nil {
			return err
		}
		if pt == nil {
			zero(dst[:n])
		} else {
			e := &pt.entries[index(va, 0)]
			if e.frame == nil {
				zero(dst[:n])
			} else {
				e.frame.Read(off, dst[:n])
			}
		}
		dst = dst[n:]
		va += uint64(n)
	}
	return nil
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// Store writes data at va, crossing page boundaries, resolving faults
// exactly as the SEUSS kernel handler does: demand-zero for unmapped
// pages, frame clones for CoW pages. Dirty bits are set and the dirty
// list updated.
func (as *AddressSpace) Store(va uint64, data []byte) error {
	for len(data) > 0 {
		if va >= MaxVirtual {
			return ErrBadAddress
		}
		off := int(va % mem.PageSize)
		n := mem.PageSize - off
		if n > len(data) {
			n = len(data)
		}
		f, err := as.faultForWrite(PageBase(va))
		if err != nil {
			return err
		}
		f.Write(off, data[:n])
		data = data[n:]
		va += uint64(n)
	}
	return nil
}

// Touch dirties the page containing va without materializing content:
// the simulation's fast path for workloads where only footprint, not
// byte fidelity, matters. Fault semantics are identical to Store.
func (as *AddressSpace) Touch(va uint64) error {
	_, err := as.faultForWrite(PageBase(va))
	return err
}

// TouchRange dirties every page in [va, va+size).
func (as *AddressSpace) TouchRange(va uint64, size uint64) error {
	for p := PageBase(va); p < va+size; p += mem.PageSize {
		if err := as.Touch(p); err != nil {
			return err
		}
	}
	return nil
}

// faultForWrite makes the page at page-base va privately writable,
// resolving demand-zero and CoW faults, and returns its frame.
func (as *AddressSpace) faultForWrite(va uint64) (*mem.Frame, error) {
	if as.frozen {
		panic("pagetable: store to frozen address space")
	}
	var pt *node
	if as.cacheOK && va&^spanMask == as.cacheBase {
		pt = as.cachePT
	} else {
		var err error
		pt, err = as.walk(va, true)
		if err != nil {
			return nil, err
		}
		as.cacheBase, as.cachePT, as.cacheOK = va&^spanMask, pt, true
	}
	e := &pt.entries[index(va, 0)]
	switch {
	case e.frame == nil:
		// Demand-zero fault: allocate a fresh frame.
		f, err := as.st.Alloc()
		if err != nil {
			return nil, err
		}
		e.frame = f
		e.flags = FlagPresent | FlagWritable | FlagUser
		as.mapped++
		as.Faults.DemandZero++
	case e.flags&FlagWritable == 0 && e.flags&FlagCoW != 0:
		// CoW fault: clone the snapshot's frame; all writes land on a
		// page dedicated exclusively to this UC (§5).
		f, err := as.st.Clone(e.frame)
		if err != nil {
			return nil, err
		}
		as.st.DecRef(e.frame)
		e.frame = f
		e.flags = (e.flags &^ FlagCoW) | FlagWritable
		as.Faults.CoW++
	case e.flags&FlagWritable == 0:
		return nil, fmt.Errorf("pagetable: write protection fault at %#x", va)
	}
	if e.flags&flagDirtyListed == 0 {
		as.dirty = append(as.dirty, va)
	}
	e.flags |= FlagDirty | FlagAccessed | flagDirtyListed
	return e.frame, nil
}

// CloneRange eagerly resolves every present CoW mapping in
// [va, va+size): the bulk/prefetch-resolve path. A burst of anticipated
// writes on one PT node privatizes the node (and its path) once instead
// of once per fault, and absent subtrees are skipped wholesale. Pages
// are made privately writable but NOT marked dirty — their content
// still equals the backing snapshot's, so the next capture correctly
// excludes them; the first real store sets the D bit as usual.
// Demand-zero and already-writable pages are left untouched. Returns
// the number of pages cloned.
func (as *AddressSpace) CloneRange(va uint64, size uint64) (int, error) {
	if as.frozen {
		panic("pagetable: CloneRange on frozen address space")
	}
	if size == 0 {
		return 0, nil
	}
	end := va + size
	cloned := 0
	for p := PageBase(va); p < end; {
		spanEnd := (p | spanMask) + 1
		// Probe first: an absent subtree costs one read-only walk, not
		// 512 build-walks.
		probe, err := as.walk(p, false)
		if err != nil {
			return cloned, err
		}
		if probe == nil {
			p = spanEnd
			continue
		}
		pt, err := as.walk(p, true) // privatize the path once for the whole span
		if err != nil {
			return cloned, err
		}
		for ; p < end && p < spanEnd; p += mem.PageSize {
			e := &pt.entries[index(p, 0)]
			if e.frame == nil || e.flags&FlagCoW == 0 || e.flags&FlagWritable != 0 {
				continue
			}
			f, err := as.st.Clone(e.frame)
			if err != nil {
				return cloned, err
			}
			as.st.DecRef(e.frame)
			e.frame = f
			e.flags = (e.flags &^ FlagCoW) | FlagWritable
			as.Faults.CoW++
			cloned++
		}
	}
	return cloned, nil
}

// InstallCoWPages bulk-installs fresh private frames at the given VAs
// as read-only CoW mappings — the graft fast path. Each page gets a
// newly allocated frame (materialized with contents[va] when present,
// left as an unmaterialized zero page otherwise); existing mappings at
// the same VA are replaced. Unlike Store, nothing faults, nothing is
// dirty-listed, and shared path nodes are privatized once per 2 MB
// span rather than once per page. The resulting entries are exactly
// what Capture's SetCoWAll + Clone would have produced for the same
// stores, so a snapshot built over them re-exports byte-identically.
func (as *AddressSpace) InstallCoWPages(vas []uint64, contents map[uint64][]byte) error {
	if as.frozen {
		panic("pagetable: InstallCoWPages on frozen address space")
	}
	var pt *node
	spanBase, spanOK := uint64(0), false
	for _, va := range vas {
		if va >= MaxVirtual || va%mem.PageSize != 0 {
			return ErrBadAddress
		}
		if !spanOK || va&^spanMask != spanBase {
			var err error
			pt, err = as.walk(va, true)
			if err != nil {
				return err
			}
			spanBase, spanOK = va&^spanMask, true
		}
		f, err := as.st.Alloc()
		if err != nil {
			return err
		}
		if content := contents[va]; content != nil {
			f.Write(0, content)
		}
		e := &pt.entries[index(va, 0)]
		if e.frame != nil {
			as.st.DecRef(e.frame)
		} else {
			as.mapped++
		}
		e.frame = f
		e.flags = FlagPresent | FlagUser | FlagCoW | FlagAccessed
	}
	return nil
}

// InstallCoWPagesSparse is InstallCoWPages for a restore: pages whose
// installed mapping would be indistinguishable from the fault path's
// default are skipped and returned instead of installed. A page
// qualifies when it has no content and its current mapping already
// reads as zeros — either no entry at all (a later touch demand-zero
// faults to a fresh zero page) or an inherited frame that was never
// materialized (reads as zeros now; a write CoW-clones another zero
// page). Installing such a page buys nothing the fault path doesn't
// already guarantee, and a typical diff is almost entirely such pages.
//
// contentVAs must be the subsequence of vas that carries content, with
// contents aligned to it — the loop advances both in lockstep, so the
// common contentless page costs one entry inspection and no hashing.
//
// The returned slice (ascending if vas is ascending) is the caller's to
// keep: a snapshot that skipped pages must remember them so re-export
// reproduces the original wire bytes (see snapshot.GraftBulk).
func (as *AddressSpace) InstallCoWPagesSparse(vas []uint64, contentVAs []uint64, contents [][]byte) ([]uint64, error) {
	si := as.NewSparseInstaller(len(vas))
	ci := 0
	for _, va := range vas {
		var content []byte
		if ci < len(contentVAs) && contentVAs[ci] == va {
			content = contents[ci]
			ci++
		}
		if err := si.Page(va, content); err != nil {
			return si.lazy, err
		}
	}
	return si.lazy, nil
}

// SparseInstaller streams diff pages into the space under the
// InstallCoWPagesSparse contract, one Page call at a time. It exists so
// a caller that decodes pages from a wire image can fuse decode and
// install into a single pass (snapshot.GraftWire) instead of staging
// the page list and content table first. Pages must arrive in ascending
// order for Lazy() to be ascending; spans repeat no walk work between
// consecutive pages of the same 2 MB span.
type SparseInstaller struct {
	as       *AddressSpace
	pt       *node
	spanBase uint64
	spanOK   bool
	built    bool // whether pt came from a build walk (private, installable)
	lazy     []uint64
}

// NewSparseInstaller prepares a streaming installer expecting about
// expect pages (a capacity hint for the lazy list).
func (as *AddressSpace) NewSparseInstaller(expect int) *SparseInstaller {
	if as.frozen {
		panic("pagetable: SparseInstaller on frozen address space")
	}
	return &SparseInstaller{as: as, lazy: make([]uint64, 0, expect)}
}

// Page installs one diff page (content nil for a zero page). Zero pages
// whose current mapping already reads as zeros are skipped and recorded
// in Lazy instead — see InstallCoWPagesSparse.
func (si *SparseInstaller) Page(va uint64, content []byte) error {
	as := si.as
	if va >= MaxVirtual || va%mem.PageSize != 0 {
		return ErrBadAddress
	}
	if !si.spanOK || va&^spanMask != si.spanBase {
		pt, err := as.walk(va, false)
		if err != nil {
			return err
		}
		si.pt, si.spanBase, si.spanOK, si.built = pt, va&^spanMask, true, false
	}
	if content == nil {
		if si.pt == nil {
			si.lazy = append(si.lazy, va)
			return nil
		}
		if e := &si.pt.entries[index(va, 0)]; e.frame == nil || !e.frame.Materialized() {
			si.lazy = append(si.lazy, va)
			return nil
		}
	}
	if !si.built {
		pt, err := as.walk(va, true)
		if err != nil {
			return err
		}
		si.pt, si.built = pt, true
	}
	f, err := as.st.Alloc()
	if err != nil {
		return err
	}
	if content != nil {
		f.Write(0, content)
	}
	e := &si.pt.entries[index(va, 0)]
	if e.frame != nil {
		as.st.DecRef(e.frame)
	} else {
		as.mapped++
	}
	e.frame = f
	e.flags = FlagPresent | FlagUser | FlagCoW | FlagAccessed
	return nil
}

// Lazy returns the skipped page VAs, ascending when pages arrived
// ascending. The slice is the caller's to keep.
func (si *SparseInstaller) Lazy() []uint64 { return si.lazy }

// PrefetchWritable bulk-resolves the given page-base VAs for writing —
// the working-set replay path (DESIGN.md §13). Each page is made
// privately writable exactly as faultForWrite would (demand-zero
// allocation for absent pages, a frame clone for CoW pages), but the
// table walk and path privatization happen once per 2 MB span instead
// of once per fault, and the resolutions count into Faults.Prefetched
// rather than DemandZero/CoW — the caller charges them in bulk at the
// batched rate, not at the per-fault rate.
//
// Prefetched pages are marked dirty and dirty-listed: the record was
// harvested from a dirty set, so the pages are expected to be written,
// and keeping them observable in DirtyPages is what makes the next
// harvest the union the drift-merge rule needs. Already-writable pages
// are skipped. Returns the number of pages resolved.
func (as *AddressSpace) PrefetchWritable(vas []uint64) (int, error) {
	if as.frozen {
		panic("pagetable: PrefetchWritable on frozen address space")
	}
	var pt *node
	spanBase, spanOK := uint64(0), false
	resolved := 0
	for _, va := range vas {
		if va >= MaxVirtual || va%mem.PageSize != 0 {
			return resolved, ErrBadAddress
		}
		if !spanOK || va&^spanMask != spanBase {
			var err error
			pt, err = as.walk(va, true)
			if err != nil {
				return resolved, err
			}
			spanBase, spanOK = va&^spanMask, true
		}
		e := &pt.entries[index(va, 0)]
		switch {
		case e.frame == nil:
			f, err := as.st.Alloc()
			if err != nil {
				return resolved, err
			}
			e.frame = f
			e.flags = FlagPresent | FlagWritable | FlagUser
			as.mapped++
		case e.flags&FlagWritable == 0 && e.flags&FlagCoW != 0:
			f, err := as.st.Clone(e.frame)
			if err != nil {
				return resolved, err
			}
			as.st.DecRef(e.frame)
			e.frame = f
			e.flags = (e.flags &^ FlagCoW) | FlagWritable
		default:
			continue // already writable (or protected): nothing to prefetch
		}
		if e.flags&flagDirtyListed == 0 {
			as.dirty = append(as.dirty, va)
		}
		e.flags |= FlagDirty | FlagAccessed | flagDirtyListed
		as.Faults.Prefetched++
		resolved++
	}
	if spanOK {
		// Seed the one-entry fault cache with the last span: residual
		// on-demand faults often land near the tail of the working set.
		as.cacheBase, as.cachePT, as.cacheOK = spanBase, pt, true
	}
	return resolved, nil
}

// DirtyPages returns the sorted page-base addresses written since
// creation or the last ClearDirty — the set snapshot capture clones.
func (as *AddressSpace) DirtyPages() []uint64 {
	out := make([]uint64, len(as.dirty))
	copy(out, as.dirty)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AppendDirtyPages appends the dirty page-base addresses to dst
// (unsorted, insertion order) and returns it — the allocation-free
// variant of DirtyPages for callers that bring their own storage.
func (as *AddressSpace) AppendDirtyPages(dst []uint64) []uint64 {
	return append(dst, as.dirty...)
}

// DirtyCount returns the number of dirty pages without copying the list.
func (as *AddressSpace) DirtyCount() int { return len(as.dirty) }

// ClearDirty resets dirty tracking (hardware D bits and the software
// list). Called after a snapshot capture. The list's storage is kept
// for the next cycle.
func (as *AddressSpace) ClearDirty() {
	for _, va := range as.dirty {
		if pt, _ := as.walk(va, false); pt != nil {
			pt.entries[index(va, 0)].flags &^= FlagDirty | flagDirtyListed
		}
	}
	as.dirty = as.dirty[:0]
}

// SetCoWAll downgrades every writable mapping to read-only CoW. Clone
// already produces CoW views; this is used when freezing a live space
// into a snapshot in place.
func (as *AddressSpace) SetCoWAll() {
	var walkNode func(n *node)
	walkNode = func(n *node) {
		for i := range n.entries {
			e := &n.entries[i]
			if e.child != nil {
				walkNode(e.child)
			}
			if e.frame != nil && e.flags&FlagWritable != 0 {
				e.flags = (e.flags &^ FlagWritable) | FlagCoW
			}
		}
	}
	walkNode(as.root)
}

// ResetFaults zeroes the fault counters and returns the previous values.
func (as *AddressSpace) ResetFaults() FaultStats {
	f := as.Faults
	as.Faults = FaultStats{}
	return f
}

// PresentPages returns the sorted page-base addresses of every present
// leaf mapping (the snapshot codec walks these to compute diffs).
func (as *AddressSpace) PresentPages() []uint64 {
	var out []uint64
	var walkNode func(n *node, prefix uint64)
	walkNode = func(n *node, prefix uint64) {
		shift := uint(mem.PageShift + indexBits*n.level)
		for i := range n.entries {
			e := &n.entries[i]
			va := prefix | uint64(i)<<shift
			if n.level == 0 {
				if e.frame != nil {
					out = append(out, va)
				}
				continue
			}
			if e.child != nil {
				walkNode(e.child, va)
			}
		}
	}
	walkNode(as.root, 0)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TableNodes returns the number of page-table nodes reachable from this
// space, and how many of those are private — reachable only through
// this space (every node on the path from the root has a single
// reference). Shared nodes are counted once.
func (as *AddressSpace) TableNodes() (total, private int) {
	seen := map[*node]bool{}
	var walkNode func(n *node, exclusive bool)
	walkNode = func(n *node, exclusive bool) {
		if seen[n] {
			return
		}
		seen[n] = true
		total++
		exclusive = exclusive && n.refs == 1
		if exclusive {
			private++
		}
		for i := range n.entries {
			if c := n.entries[i].child; c != nil {
				walkNode(c, exclusive)
			}
		}
	}
	walkNode(as.root, true)
	return total, private
}

// FootprintBytes returns the private memory cost of this space: frames
// created by its faults (pages copied) plus its private table nodes.
// This is the marginal cost of one more UC deployed from a snapshot —
// the quantity that determines cache density in Table 3.
func (as *AddressSpace) FootprintBytes() int64 {
	_, private := as.TableNodes()
	return int64(as.Faults.Copied()+private) * mem.PageSize
}
