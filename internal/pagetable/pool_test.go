package pagetable

import (
	"testing"

	"seuss/internal/mem"
)

// snapshotStyleCapture mimics the snapshot layer's capture sequence:
// downgrade, clone (the immutable image), then clear dirty on the live
// space.
func snapshotStyleCapture(t *testing.T, live *AddressSpace) *AddressSpace {
	t.Helper()
	live.SetCoWAll()
	snap, err := live.Clone()
	if err != nil {
		t.Fatal(err)
	}
	snap.Freeze()
	live.ClearDirty()
	return snap
}

// TestCloneRangePrivatizesNodeOnce verifies the bulk path: resolving a
// burst of CoW pages within one PT span clones the page-table node once,
// not per page.
func TestCloneRangePrivatizesNodeOnce(t *testing.T) {
	st := mem.NewStore(0)
	parent, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	const pages = 64
	for i := 0; i < pages; i++ {
		if err := parent.Store(uint64(i)*mem.PageSize, []byte{byte(i), 1}); err != nil {
			t.Fatal(err)
		}
	}
	snap := snapshotStyleCapture(t, parent)

	child, err := snap.Clone()
	if err != nil {
		t.Fatal(err)
	}
	child.ResetFaults()
	n, err := child.CloneRange(0, pages*mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if n != pages {
		t.Fatalf("CloneRange cloned %d pages, want %d", n, pages)
	}
	if got := child.Faults.CoW; got != pages {
		t.Errorf("CoW faults = %d, want %d", got, pages)
	}
	// All 64 pages live under one PT node; the whole path (PML4e child,
	// PDPT, PD, PT) is privatized exactly once each.
	if got := child.Faults.TableClones; got > levels-1 {
		t.Errorf("TableClones = %d, want ≤ %d (one privatization per level)", got, levels-1)
	}
	// Prefetch-resolved pages are NOT dirty: content equals the backing
	// image until a real store lands.
	if got := child.DirtyCount(); got != 0 {
		t.Errorf("DirtyCount = %d after CloneRange, want 0", got)
	}
	// Writes after prefetch need no further frame copies.
	child.ResetFaults()
	for i := 0; i < pages; i++ {
		if err := child.Store(uint64(i)*mem.PageSize, []byte{byte(i), 2}); err != nil {
			t.Fatal(err)
		}
	}
	if got := child.Faults.Copied(); got != 0 {
		t.Errorf("stores after CloneRange copied %d pages, want 0", got)
	}
	if got := child.DirtyCount(); got != pages {
		t.Errorf("DirtyCount = %d after stores, want %d", got, pages)
	}
	// Independence: the snapshot still reads the old bytes.
	var b [2]byte
	if err := snap.Load(0, b[:]); err != nil {
		t.Fatal(err)
	}
	if b[1] != 1 {
		t.Errorf("snapshot corrupted by CloneRange child: got %#x", b[1])
	}
}

// TestCloneRangeSkipsAbsentAndZero checks absent subtrees and
// demand-zero/writable pages are left alone.
func TestCloneRangeSkipsAbsentAndZero(t *testing.T) {
	st := mem.NewStore(0)
	as, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	// One writable page; the rest of the range is unmapped.
	if err := as.Store(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	before := st.Stats().Allocs
	n, err := as.CloneRange(0, 1<<30) // 1 GB of mostly-absent address space
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("CloneRange cloned %d pages, want 0", n)
	}
	if got := st.Stats().Allocs - before; got != 0 {
		t.Errorf("CloneRange allocated %d frames over absent space, want 0", got)
	}
}

// TestFaultBurstPrivatizesNodeOnce: the software fault cache gives the
// regular (non-bulk) fault path the same privatize-once behavior.
func TestFaultBurstPrivatizesNodeOnce(t *testing.T) {
	st := mem.NewStore(0)
	parent, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := parent.Store(uint64(i)*mem.PageSize, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := snapshotStyleCapture(t, parent)
	child, _ := snap.Clone()
	child.ResetFaults()
	for i := 0; i < 32; i++ {
		if err := child.Touch(uint64(i) * mem.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if got := child.Faults.TableClones; got > levels-1 {
		t.Errorf("TableClones = %d for a single-span burst, want ≤ %d", got, levels-1)
	}
}

// TestFaultCacheInvalidatedByClone is the aliasing hazard test: after a
// space is cloned (captured), writes through the source must not land in
// page-table nodes the clone shares.
func TestFaultCacheInvalidatedByClone(t *testing.T) {
	st := mem.NewStore(0)
	live, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	// Prime the fault cache.
	if err := live.Store(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	snap := snapshotStyleCapture(t, live)
	// Write through the live space post-capture — with a stale cache this
	// would scribble into the frozen snapshot's shared PT node.
	if err := live.Store(0, []byte{2}); err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if err := snap.Load(0, b[:]); err != nil {
		t.Fatal(err)
	}
	if b[0] != 1 {
		t.Fatalf("frozen snapshot saw post-capture write: got %d, want 1", b[0])
	}
	var l [1]byte
	live.Load(0, l[:])
	if l[0] != 2 {
		t.Fatalf("live space lost its write: got %d, want 2", l[0])
	}
}

// TestDirtyListStorageReused: ClearDirty must keep the list's capacity
// so steady-state capture cycles stop allocating.
func TestDirtyListStorageReused(t *testing.T) {
	st := mem.NewStore(0)
	as, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	if mem.PoisonEnabled {
		t.Skip("descriptor quarantine (seusspoison) makes slab refills expected")
	}
	for i := 0; i < 100; i++ {
		as.Touch(uint64(i) * mem.PageSize)
	}
	as.ClearDirty()
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 100; i++ {
			as.Touch(uint64(i) * mem.PageSize)
		}
		as.ClearDirty()
	})
	if allocs != 0 {
		t.Errorf("steady-state touch+clear cycle allocates %.1f/op, want 0", allocs)
	}
}

// TestSpaceAndNodeRecycling: a release→clone cycle reuses pooled
// structures (no fresh frames beyond the recycled ones, stable frame
// accounting).
func TestSpaceAndNodeRecycling(t *testing.T) {
	if mem.PoisonEnabled {
		t.Skip("descriptor quarantine (seusspoison) makes slab refills expected")
	}
	st := mem.NewStore(0)
	parent, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		parent.Store(uint64(i)*mem.PageSize, []byte{byte(i)})
	}
	snap := snapshotStyleCapture(t, parent)

	// Prime: one deploy/destroy cycle fills the pools.
	c, _ := snap.Clone()
	c.TouchRange(0, 8*mem.PageSize)
	c.Release()

	base := st.Stats().FramesInUse
	allocs := testing.AllocsPerRun(50, func() {
		child, err := snap.Clone()
		if err != nil {
			t.Fatal(err)
		}
		if err := child.TouchRange(0, 8*mem.PageSize); err != nil {
			t.Fatal(err)
		}
		child.Release()
	})
	if got := st.Stats().FramesInUse; got != base {
		t.Errorf("frame accounting drifted: %d -> %d", base, got)
	}
	if allocs != 0 {
		t.Errorf("steady-state clone/touch/release allocates %.1f/op, want 0", allocs)
	}
}
