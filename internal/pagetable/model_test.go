package pagetable

import (
	"testing"
	"testing/quick"

	"seuss/internal/mem"
)

// modelOp is one operation in a random sequence checked against a
// shadow reference model (a plain map from page to last written byte).
type modelOp struct {
	Kind  uint8 // 0 store, 1 clone-and-switch, 2 release-clone, 3 capture-like downgrade
	Page  uint8
	Value byte
}

// TestQuickModelConformance drives random operation sequences through
// the page-table substrate and a trivial reference model in lockstep:
// after every step, every page the model knows must read back the
// model's value through the current address space.
func TestQuickModelConformance(t *testing.T) {
	const pages = 24
	prop := func(ops []modelOp) bool {
		st := mem.NewStore(0)
		cur, err := New(st)
		if err != nil {
			return false
		}
		var parents []*AddressSpace
		model := map[uint64]byte{}

		check := func() bool {
			for page, want := range model {
				b := make([]byte, 1)
				if err := cur.Load(page*mem.PageSize, b); err != nil {
					return false
				}
				if b[0] != want {
					return false
				}
			}
			return true
		}

		for _, op := range ops {
			page := uint64(op.Page % pages)
			switch op.Kind % 4 {
			case 0: // store
				if cur.Frozen() {
					continue
				}
				if err := cur.Store(page*mem.PageSize, []byte{op.Value}); err != nil {
					return false
				}
				model[page] = op.Value
			case 1: // snapshot-style capture + deploy: downgrade, clone, switch
				if cur.Frozen() {
					continue
				}
				cur.SetCoWAll()
				cur.ClearDirty()
				cur.Freeze()
				child, err := cur.Clone()
				if err != nil {
					return false
				}
				parents = append(parents, cur)
				cur = child
				// The model is unchanged: the clone sees everything.
			case 2: // release an old parent: must not disturb cur
				if len(parents) > 1 {
					// Keep the lineage alive: release only the oldest
					// ancestor beyond the immediate parent. Snapshot
					// semantics forbid deleting depended-on images;
					// dropping a leaf reference is always safe.
					parents[0].Release()
					parents = parents[1:]
				}
			case 3: // redundant downgrade on a live space
				if !cur.Frozen() {
					cur.SetCoWAll()
					// Still writable via CoW faults; model unchanged.
				}
			}
			if !check() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickDirtyMatchesModel verifies the dirty set always equals the
// set of pages stored-to since the last clear.
func TestQuickDirtyMatchesModel(t *testing.T) {
	prop := func(writes []uint8, clearAt uint8) bool {
		as, err := New(mem.NewStore(0))
		if err != nil {
			return false
		}
		expected := map[uint64]bool{}
		for i, w := range writes {
			if i == int(clearAt) {
				as.ClearDirty()
				expected = map[uint64]bool{}
			}
			page := uint64(w % 48)
			as.Store(page*mem.PageSize, []byte{1})
			expected[page*mem.PageSize] = true
		}
		got := as.DirtyPages()
		if len(got) != len(expected) {
			return false
		}
		for _, va := range got {
			if !expected[va] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
