package pagetable

import (
	"testing"
	"testing/quick"

	"seuss/internal/mem"
)

func newAS(t *testing.T) *AddressSpace {
	t.Helper()
	as, err := New(mem.NewStore(0))
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func TestStoreLoadRoundTrip(t *testing.T) {
	as := newAS(t)
	data := []byte("skip redundant paths")
	if err := as.Store(0x400000, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := as.Load(0x400000, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Errorf("got %q", got)
	}
}

func TestStoreCrossesPageBoundary(t *testing.T) {
	as := newAS(t)
	va := uint64(mem.PageSize) - 3
	data := []byte("abcdefgh")
	if err := as.Store(va, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := as.Load(va, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Errorf("got %q", got)
	}
	if as.DirtyCount() != 2 {
		t.Errorf("dirty = %d, want 2 (two pages touched)", as.DirtyCount())
	}
}

func TestUnmappedLoadsReadZero(t *testing.T) {
	as := newAS(t)
	got := make([]byte, 16)
	got[3] = 0xff
	if err := as.Load(0xdead000, got); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unmapped load returned nonzero")
		}
	}
	if as.MappedPages() != 0 {
		t.Error("load created mappings")
	}
}

func TestDemandZeroFaultCounted(t *testing.T) {
	as := newAS(t)
	if err := as.Store(0x1000, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if as.Faults.DemandZero != 1 || as.Faults.CoW != 0 {
		t.Errorf("faults = %+v", as.Faults)
	}
	// Second store to same page: no new fault.
	if err := as.Store(0x1001, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if as.Faults.DemandZero != 1 {
		t.Errorf("refault on mapped page: %+v", as.Faults)
	}
}

func TestDirtyTracking(t *testing.T) {
	as := newAS(t)
	vas := []uint64{0x1000, 0x5000, 0x200000}
	for _, va := range vas {
		if err := as.Touch(va); err != nil {
			t.Fatal(err)
		}
	}
	dirty := as.DirtyPages()
	if len(dirty) != 3 {
		t.Fatalf("dirty = %v", dirty)
	}
	for i, va := range vas {
		if dirty[i] != va {
			t.Errorf("dirty[%d] = %#x, want %#x (sorted)", i, dirty[i], va)
		}
	}
	as.ClearDirty()
	if as.DirtyCount() != 0 {
		t.Error("ClearDirty left pages dirty")
	}
	// Flags cleared too.
	_, fl, ok := as.Translate(0x1000)
	if !ok || fl&FlagDirty != 0 {
		t.Errorf("dirty bit survives ClearDirty: %v %v", fl, ok)
	}
}

func TestTouchRange(t *testing.T) {
	as := newAS(t)
	if err := as.TouchRange(0x10000, 10*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if as.DirtyCount() != 10 {
		t.Errorf("dirty = %d, want 10", as.DirtyCount())
	}
}

func TestMapFrameAndTranslate(t *testing.T) {
	st := mem.NewStore(0)
	as, _ := New(st)
	f := st.MustAlloc()
	f.Write(0, []byte("shared"))
	if err := as.MapFrame(0x7000, f, FlagUser); err != nil {
		t.Fatal(err)
	}
	got, fl, ok := as.Translate(0x7abc)
	if !ok || got != f {
		t.Fatal("translate failed")
	}
	if fl&FlagPresent == 0 {
		t.Error("present not set")
	}
	if f.Refs() != 2 {
		t.Errorf("frame refs = %d, want 2 (caller + mapping)", f.Refs())
	}
}

func TestMapFrameUnaligned(t *testing.T) {
	st := mem.NewStore(0)
	as, _ := New(st)
	if err := as.MapFrame(0x7001, st.MustAlloc(), 0); err != ErrBadAddress {
		t.Errorf("err = %v", err)
	}
}

func TestUnmap(t *testing.T) {
	st := mem.NewStore(0)
	as, _ := New(st)
	f := st.MustAlloc()
	if err := as.MapFrame(0x7000, f, FlagUser); err != nil {
		t.Fatal(err)
	}
	if err := as.Unmap(0x7000); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := as.Translate(0x7000); ok {
		t.Error("still mapped")
	}
	if f.Refs() != 1 {
		t.Errorf("refs = %d, want 1", f.Refs())
	}
	if err := as.Unmap(0x7000); err != ErrNotMapped {
		t.Errorf("double unmap err = %v", err)
	}
}

func TestWriteProtectionFault(t *testing.T) {
	st := mem.NewStore(0)
	as, _ := New(st)
	f := st.MustAlloc()
	// Read-only, not CoW: a genuine protection violation.
	if err := as.MapFrame(0x1000, f, FlagUser); err != nil {
		t.Fatal(err)
	}
	if err := as.Store(0x1000, []byte{1}); err == nil {
		t.Fatal("store to read-only non-CoW page succeeded")
	}
}

func TestBadAddress(t *testing.T) {
	as := newAS(t)
	if err := as.Store(MaxVirtual, []byte{1}); err != ErrBadAddress {
		t.Errorf("store err = %v", err)
	}
	if err := as.Load(MaxVirtual, make([]byte, 1)); err != ErrBadAddress {
		t.Errorf("load err = %v", err)
	}
}

// buildParent creates a space with n pages of content, downgrades it to
// CoW and freezes it — the snapshot preparation sequence.
func buildParent(t *testing.T, st *mem.Store, n int) *AddressSpace {
	t.Helper()
	as, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := as.Store(uint64(i)*mem.PageSize, []byte{byte(i), 0xaa}); err != nil {
			t.Fatal(err)
		}
	}
	as.SetCoWAll()
	as.ClearDirty()
	as.Freeze()
	return as
}

func TestCloneSharesFrames(t *testing.T) {
	st := mem.NewStore(0)
	parent := buildParent(t, st, 8)
	before := st.Stats().FramesInUse
	child, err := parent.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// A clone costs exactly one frame: the new root node.
	if got := st.Stats().FramesInUse - before; got != 1 {
		t.Errorf("clone allocated %d frames, want 1", got)
	}
	// Content visible through the clone.
	b := make([]byte, 2)
	if err := child.Load(3*mem.PageSize, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 3 || b[1] != 0xaa {
		t.Errorf("clone read %v", b)
	}
}

func TestCloneCoWIsolation(t *testing.T) {
	st := mem.NewStore(0)
	parent := buildParent(t, st, 4)
	child, _ := parent.Clone()
	// Write through the child: must trigger a CoW fault and not be
	// visible in the parent.
	if err := child.Store(0, []byte{0x99}); err != nil {
		t.Fatal(err)
	}
	if child.Faults.CoW != 1 {
		t.Errorf("faults = %+v", child.Faults)
	}
	pb := make([]byte, 1)
	if err := parent.Load(0, pb); err != nil {
		t.Fatal(err)
	}
	if pb[0] != 0 {
		t.Errorf("parent saw child write: %v", pb)
	}
	cb := make([]byte, 1)
	child.Load(0, cb)
	if cb[0] != 0x99 {
		t.Errorf("child lost its write: %v", cb)
	}
	// CoW preserved the rest of the page.
	rest := make([]byte, 1)
	child.Load(1, rest)
	if rest[0] != 0xaa {
		t.Errorf("CoW clone lost original content: %v", rest)
	}
}

func TestTwoClonesAreIndependent(t *testing.T) {
	st := mem.NewStore(0)
	parent := buildParent(t, st, 2)
	a, _ := parent.Clone()
	b, _ := parent.Clone()
	a.Store(0, []byte{1})
	b.Store(0, []byte{2})
	ab, bb := make([]byte, 1), make([]byte, 1)
	a.Load(0, ab)
	b.Load(0, bb)
	if ab[0] != 1 || bb[0] != 2 {
		t.Errorf("clones interfered: a=%v b=%v", ab, bb)
	}
}

func TestCloneDirtyListStartsEmpty(t *testing.T) {
	st := mem.NewStore(0)
	parent := buildParent(t, st, 4)
	child, _ := parent.Clone()
	if child.DirtyCount() != 0 {
		t.Error("clone inherited dirty pages")
	}
	child.Touch(0)
	if child.DirtyCount() != 1 {
		t.Error("child dirty tracking broken")
	}
}

func TestReleaseReturnsAllFrames(t *testing.T) {
	st := mem.NewStore(0)
	parent := buildParent(t, st, 16)
	child, _ := parent.Clone()
	child.Store(0, []byte{1}) // private page
	child.Release()
	parent.Release()
	if got := st.Stats().FramesInUse; got != 0 {
		t.Errorf("leaked %d frames", got)
	}
}

func TestReleaseChildKeepsParentIntact(t *testing.T) {
	st := mem.NewStore(0)
	parent := buildParent(t, st, 8)
	child, _ := parent.Clone()
	child.Store(2*mem.PageSize, []byte{7})
	child.Release()
	b := make([]byte, 2)
	if err := parent.Load(2*mem.PageSize, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 2 || b[1] != 0xaa {
		t.Errorf("parent content damaged: %v", b)
	}
}

func TestFrozenStorePanics(t *testing.T) {
	st := mem.NewStore(0)
	parent := buildParent(t, st, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	parent.Store(0, []byte{1})
}

func TestTableClonePrivatizesPath(t *testing.T) {
	st := mem.NewStore(0)
	parent := buildParent(t, st, 4)
	child, _ := parent.Clone()
	if err := child.Store(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	// Path PDPT, PD, PT (3 nodes) privatized on first write.
	if child.Faults.TableClones != 3 {
		t.Errorf("TableClones = %d, want 3", child.Faults.TableClones)
	}
	// Second write in same region: no more clones.
	child.Store(mem.PageSize, []byte{1})
	if child.Faults.TableClones != 3 {
		t.Errorf("TableClones after 2nd write = %d", child.Faults.TableClones)
	}
}

func TestTableNodesSharing(t *testing.T) {
	st := mem.NewStore(0)
	parent := buildParent(t, st, 4)
	child, _ := parent.Clone()
	total, private := child.TableNodes()
	if total != 4 { // root + 3 shared interior/leaf
		t.Errorf("total = %d, want 4", total)
	}
	if private != 1 { // only the root
		t.Errorf("private = %d, want 1", private)
	}
}

func TestFootprintBytes(t *testing.T) {
	st := mem.NewStore(0)
	parent := buildParent(t, st, 64)
	child, _ := parent.Clone()
	for i := 0; i < 5; i++ {
		child.Store(uint64(i)*mem.PageSize, []byte{9})
	}
	// 5 CoW pages + 3 privatized table nodes + 1 private root.
	want := int64(5+3+1) * mem.PageSize
	if got := child.FootprintBytes(); got != want {
		t.Errorf("FootprintBytes = %d, want %d", got, want)
	}
}

func TestStackedClones(t *testing.T) {
	// Snapshot-stack shape: base → fn snapshot → UC. Writes at each
	// level visible only downstream.
	st := mem.NewStore(0)
	base := buildParent(t, st, 4)

	fnSpace, _ := base.Clone()
	fnSpace.Store(mem.PageSize, []byte{0x11}) // the "function code" page
	fnSpace.SetCoWAll()
	fnSpace.ClearDirty()
	fnSpace.Freeze()

	uc, _ := fnSpace.Clone()
	uc.Store(2*mem.PageSize, []byte{0x22}) // "execution" writes

	b := make([]byte, 1)
	uc.Load(mem.PageSize, b)
	if b[0] != 0x11 {
		t.Error("UC does not see function snapshot write")
	}
	base.Load(mem.PageSize, b)
	if b[0] != 1 { // buildParent wrote {1, 0xaa} on page 1
		t.Errorf("base sees function snapshot write: %#x", b[0])
	}
	fnSpace.Load(2*mem.PageSize, b)
	if b[0] != 2 { // buildParent wrote {2, 0xaa} on page 2
		t.Errorf("function snapshot sees UC write: %#x", b[0])
	}
}

func TestResetFaults(t *testing.T) {
	as := newAS(t)
	as.Touch(0)
	prev := as.ResetFaults()
	if prev.DemandZero != 1 {
		t.Errorf("prev = %+v", prev)
	}
	if as.Faults.DemandZero != 0 {
		t.Error("not reset")
	}
	if prev.Copied() != 1 {
		t.Errorf("Copied = %d", prev.Copied())
	}
}

// Property: after any sequence of page-granular writes through a clone,
// every written page reads back the written value in the clone and the
// original value in the parent.
func TestQuickCloneIsolation(t *testing.T) {
	prop := func(pages []uint8) bool {
		st := mem.NewStore(0)
		parent, err := New(st)
		if err != nil {
			return false
		}
		for i := 0; i < 16; i++ {
			parent.Store(uint64(i)*mem.PageSize, []byte{byte(i + 1)})
		}
		parent.SetCoWAll()
		parent.ClearDirty()
		parent.Freeze()
		child, err := parent.Clone()
		if err != nil {
			return false
		}
		for _, p := range pages {
			pg := uint64(p%16) * mem.PageSize
			child.Store(pg, []byte{0xEE})
		}
		for i := 0; i < 16; i++ {
			pb := make([]byte, 1)
			parent.Load(uint64(i)*mem.PageSize, pb)
			if pb[0] != byte(i+1) {
				return false
			}
		}
		for _, p := range pages {
			cb := make([]byte, 1)
			child.Load(uint64(p%16)*mem.PageSize, cb)
			if cb[0] != 0xEE {
				return false
			}
		}
		child.Release()
		parent.Release()
		return st.Stats().FramesInUse == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: mapped-page accounting matches Translate over a random set
// of distinct pages.
func TestQuickMappedAccounting(t *testing.T) {
	prop := func(raw []uint16) bool {
		as, err := New(mem.NewStore(0))
		if err != nil {
			return false
		}
		seen := map[uint64]bool{}
		for _, r := range raw {
			va := uint64(r) * mem.PageSize
			as.Touch(va)
			seen[va] = true
		}
		if as.MappedPages() != len(seen) {
			return false
		}
		for va := range seen {
			if _, _, ok := as.Translate(va); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
