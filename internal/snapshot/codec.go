package snapshot

import (
	"bytes"
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"seuss/internal/mem"
	"seuss/internal/pagetable"
)

// Wire format for exported snapshot diffs — what DR-SEUSS ships across
// the fabric (§9: "the read-only and deploy-anywhere properties of
// unikernel snapshots suggest they can be cloned and deployed across
// machines with similar hardware profiles").
//
//	magic   [4]byte  "SEUS"
//	version uint16
//	flags   uint16   (bit 0: page has content; per-page, see below)
//	name    uint16-prefixed string
//	base    uint16-prefixed string ("" for root snapshots)
//	regs    8 * (3 + 14) bytes, little endian
//	payload uint32-prefixed opaque bytes (guest metadata; see below)
//	npages  uint32
//	pages   npages * { va uint64, has uint8, content [PageSize]byte if has }
//	crc32   uint32 over everything above
//
// Only the diff travels: the receiver grafts it onto its own base image
// (which must carry the same base name — "similar hardware profiles").
//
// The payload field carries the snapshot's opaque guest metadata when
// it implements encoding.BinaryMarshaler (uc.Payload does, via gob); on
// real hardware this state lives inside the shipped pages themselves.

const codecMagic = "SEUS"
const codecVersion = 1

// ErrCodec is wrapped by all decode failures.
var ErrCodec = errors.New("snapshot: codec")

// Export serializes the snapshot's diff relative to its base: its name,
// lineage, registers, and every dirty page (address plus content for
// materialized pages; zero pages travel as one byte).
//
// The diff page set is reconstructed by comparing the snapshot's leaf
// frames against its base's: a page belongs to the diff iff the two
// spaces map different frames at that address.
func (s *Snapshot) Export(w io.Writer) error {
	if s.deleted {
		return fmt.Errorf("%w: export of deleted snapshot", ErrCodec)
	}
	var buf bytes.Buffer
	buf.WriteString(codecMagic)
	writeU16 := func(v uint16) { binary.Write(&buf, binary.LittleEndian, v) }
	writeU16(codecVersion)
	writeU16(0)
	writeString := func(str string) {
		writeU16(uint16(len(str)))
		buf.WriteString(str)
	}
	writeString(s.name)
	baseName := ""
	if s.base != nil {
		baseName = s.base.name
	}
	writeString(baseName)
	binary.Write(&buf, binary.LittleEndian, s.regs.PC)
	binary.Write(&buf, binary.LittleEndian, s.regs.SP)
	binary.Write(&buf, binary.LittleEndian, s.regs.Flags)
	for _, g := range s.regs.GPR {
		binary.Write(&buf, binary.LittleEndian, g)
	}

	var payloadBytes []byte
	if bm, ok := s.payload.(encoding.BinaryMarshaler); ok {
		pb, err := bm.MarshalBinary()
		if err != nil {
			return fmt.Errorf("%w: payload: %v", ErrCodec, err)
		}
		payloadBytes = pb
	}
	binary.Write(&buf, binary.LittleEndian, uint32(len(payloadBytes)))
	buf.Write(payloadBytes)

	pages := s.diffPageSet()
	binary.Write(&buf, binary.LittleEndian, uint32(len(pages)))
	content := make([]byte, mem.PageSize)
	for _, pg := range pages {
		binary.Write(&buf, binary.LittleEndian, pg.va)
		if pg.frame.Materialized() {
			buf.WriteByte(1)
			pg.frame.Read(0, content)
			buf.Write(content)
		} else {
			buf.WriteByte(0)
		}
	}
	binary.Write(&buf, binary.LittleEndian, crc32.ChecksumIEEE(buf.Bytes()))
	_, err := w.Write(buf.Bytes())
	return err
}

type diffPage struct {
	va    uint64
	frame *mem.Frame
}

// diffPageSet walks the snapshot's space and its base's, collecting the
// pages whose frames differ.
func (s *Snapshot) diffPageSet() []diffPage {
	var out []diffPage
	var baseSpace *pagetable.AddressSpace
	if s.base != nil {
		baseSpace = s.base.space
	}
	for _, va := range s.space.PresentPages() {
		f, _, ok := s.space.Translate(va)
		if !ok {
			continue
		}
		if baseSpace != nil {
			if bf, _, bok := baseSpace.Translate(va); bok && bf == f {
				continue // shared with the base: not part of the diff
			}
		}
		out = append(out, diffPage{va: va, frame: f})
	}
	return out
}

// ImportHeader is the decoded metadata of an exported diff.
type ImportHeader struct {
	Name     string
	BaseName string
	Regs     Registers
	Pages    int
}

// ImportedDiff is a decoded snapshot diff, ready to graft onto a base.
type ImportedDiff struct {
	Header ImportHeader
	// PayloadBytes is the opaque guest metadata shipped with the diff;
	// the receiving node decodes it (uc.DecodePayload) and attaches it
	// to the grafted snapshot.
	PayloadBytes []byte
	// PageVAs lists the diff's page addresses.
	PageVAs []uint64
	// Contents maps page addresses to 4 KiB payloads (absent for zero
	// pages).
	Contents map[uint64][]byte
}

// LogicalBytes returns the diff's in-memory size (pages × PageSize) —
// the volume a real migration ships. In the simulation, pages whose
// content was never materialized travel as one byte on the wire (see
// WireBytes), but they stand in for real page content, so transfer
// accounting uses LogicalBytes.
func (d *ImportedDiff) LogicalBytes() int64 {
	return int64(len(d.PageVAs)) * mem.PageSize
}

// WireBytes returns the serialized size of the diff (transfer
// accounting for the simulated stream itself; real systems with
// zero-page compression approach this bound).
func (d *ImportedDiff) WireBytes() int64 {
	n := int64(len(d.PayloadBytes))
	for _, va := range d.PageVAs {
		n += 9 // va + has flag
		if _, ok := d.Contents[va]; ok {
			n += mem.PageSize
		}
	}
	return n
}

// Import decodes an exported diff.
func Import(r io.Reader) (*ImportedDiff, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	if len(raw) < 12 {
		return nil, fmt.Errorf("%w: truncated", ErrCodec)
	}
	body, crcBytes := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCodec)
	}
	buf := bytes.NewReader(body)
	magic := make([]byte, 4)
	io.ReadFull(buf, magic)
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCodec, magic)
	}
	var version, flags uint16
	binary.Read(buf, binary.LittleEndian, &version)
	binary.Read(buf, binary.LittleEndian, &flags)
	if version != codecVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCodec, version)
	}
	readString := func() (string, error) {
		var n uint16
		if err := binary.Read(buf, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(buf, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	out := &ImportedDiff{Contents: make(map[uint64][]byte)}
	if out.Header.Name, err = readString(); err != nil {
		return nil, fmt.Errorf("%w: name: %v", ErrCodec, err)
	}
	if out.Header.BaseName, err = readString(); err != nil {
		return nil, fmt.Errorf("%w: base: %v", ErrCodec, err)
	}
	binary.Read(buf, binary.LittleEndian, &out.Header.Regs.PC)
	binary.Read(buf, binary.LittleEndian, &out.Header.Regs.SP)
	binary.Read(buf, binary.LittleEndian, &out.Header.Regs.Flags)
	for i := range out.Header.Regs.GPR {
		binary.Read(buf, binary.LittleEndian, &out.Header.Regs.GPR[i])
	}
	var plen uint32
	if err := binary.Read(buf, binary.LittleEndian, &plen); err != nil {
		return nil, fmt.Errorf("%w: payload length: %v", ErrCodec, err)
	}
	if plen > 0 {
		out.PayloadBytes = make([]byte, plen)
		if _, err := io.ReadFull(buf, out.PayloadBytes); err != nil {
			return nil, fmt.Errorf("%w: payload: %v", ErrCodec, err)
		}
	}
	var npages uint32
	if err := binary.Read(buf, binary.LittleEndian, &npages); err != nil {
		return nil, fmt.Errorf("%w: page count: %v", ErrCodec, err)
	}
	for i := uint32(0); i < npages; i++ {
		var va uint64
		if err := binary.Read(buf, binary.LittleEndian, &va); err != nil {
			return nil, fmt.Errorf("%w: page %d: %v", ErrCodec, i, err)
		}
		has := make([]byte, 1)
		if _, err := io.ReadFull(buf, has); err != nil {
			return nil, fmt.Errorf("%w: page %d flag: %v", ErrCodec, i, err)
		}
		out.PageVAs = append(out.PageVAs, va)
		if has[0] == 1 {
			content := make([]byte, mem.PageSize)
			if _, err := io.ReadFull(buf, content); err != nil {
				return nil, fmt.Errorf("%w: page %d content: %v", ErrCodec, i, err)
			}
			out.Contents[va] = content
		}
	}
	out.Header.Pages = len(out.PageVAs)
	return out, nil
}

// Materialize reconstructs a *root* snapshot (one exported with no
// base) inside st, backed entirely by fresh local frames. This is the
// hydration path of the sharded node pool: the base runtime image is
// booted and captured once, exported through the codec, and then
// materialized into each shard's private store — so anticipatory
// optimization and runtime boot are paid once per process, not once
// per shard.
//
// The caller is responsible for decoding and attaching the diff's
// guest payload (uc.DecodePayload); this package cannot, as the
// payload type lives above it.
func Materialize(diff *ImportedDiff, st *mem.Store) (*Snapshot, error) {
	if diff.Header.BaseName != "" {
		return nil, fmt.Errorf("%w: materialize of non-root diff %q (base %q); graft it instead",
			ErrCodec, diff.Header.Name, diff.Header.BaseName)
	}
	space, err := pagetable.New(st)
	if err != nil {
		return nil, fmt.Errorf("%w: materialize: %v", ErrCodec, err)
	}
	for _, va := range diff.PageVAs {
		if content, ok := diff.Contents[va]; ok {
			err = space.Store(va, content)
		} else {
			err = space.Touch(va)
		}
		if err != nil {
			space.Release()
			return nil, fmt.Errorf("%w: materialize page %#x: %v", ErrCodec, va, err)
		}
	}
	snap, err := Capture(diff.Header.Name, nil, space, diff.Header.Regs)
	if err != nil {
		space.Release()
		return nil, err
	}
	// The staging space served its purpose; the snapshot holds its own
	// references now.
	space.Release()
	return snap, nil
}

// Graft applies an imported diff on top of a local base snapshot,
// producing a new snapshot equivalent to the exported one (same name,
// registers, and page contents) but backed by local frames. The base's
// name must match the diff's recorded lineage.
func Graft(diff *ImportedDiff, base *Snapshot) (*Snapshot, error) {
	if base == nil {
		return nil, fmt.Errorf("%w: graft requires a base", ErrCodec)
	}
	if base.name != diff.Header.BaseName {
		return nil, fmt.Errorf("%w: base %q does not match diff lineage %q",
			ErrCodec, base.name, diff.Header.BaseName)
	}
	space, _, err := base.Deploy()
	if err != nil {
		return nil, err
	}
	for _, va := range diff.PageVAs {
		if content, ok := diff.Contents[va]; ok {
			if err := space.Store(va, content); err != nil {
				space.Release()
				base.ReleaseUC()
				return nil, err
			}
		} else if err := space.Touch(va); err != nil {
			space.Release()
			base.ReleaseUC()
			return nil, err
		}
	}
	snap, err := Capture(diff.Header.Name, base, space, diff.Header.Regs)
	if err != nil {
		space.Release()
		base.ReleaseUC()
		return nil, err
	}
	// The staging space served its purpose; the snapshot holds its own
	// references now.
	space.Release()
	base.ReleaseUC()
	return snap, nil
}
