package snapshot

import (
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"seuss/internal/mem"
	"seuss/internal/pagetable"
)

// Wire format for exported snapshot diffs — what DR-SEUSS ships across
// the fabric (§9: "the read-only and deploy-anywhere properties of
// unikernel snapshots suggest they can be cloned and deployed across
// machines with similar hardware profiles").
//
//	magic   [4]byte  "SEUS"
//	version uint16
//	flags   uint16   (bit 0: page has content; per-page, see below)
//	name    uint16-prefixed string
//	base    uint16-prefixed string ("" for root snapshots)
//	regs    8 * (3 + 14) bytes, little endian
//	payload uint32-prefixed opaque bytes (guest metadata; see below)
//	npages  uint32
//	pages   npages * { va uint64, has uint8, content [PageSize]byte if has }
//	crc32   uint32 over everything above
//
// Only the diff travels: the receiver grafts it onto its own base image
// (which must carry the same base name — "similar hardware profiles").
//
// The payload field carries the snapshot's opaque guest metadata when
// it implements encoding.BinaryMarshaler (uc.Payload does, via gob); on
// real hardware this state lives inside the shipped pages themselves.

const codecMagic = "SEUS"
const codecVersion = 1

// ErrCodec is wrapped by all decode failures.
var ErrCodec = errors.New("snapshot: codec")

// crcWriter streams bytes to an io.Writer while folding them into a
// running CRC32 — the encode side never builds an intermediate copy of
// the image. Errors are sticky so the encoder can write unconditionally
// and check once.
type crcWriter struct {
	w   io.Writer
	crc uint32
	err error
}

func (c *crcWriter) write(b []byte) {
	if c.err != nil {
		return
	}
	c.crc = crc32.Update(c.crc, crc32.IEEETable, b)
	_, c.err = c.w.Write(b)
}

// Export serializes the snapshot's diff relative to its base: its name,
// lineage, registers, and every dirty page (address plus content for
// materialized pages; zero pages travel as one byte).
//
// The encode is zero-copy: page bytes stream straight from the frames'
// live buffers into w with the CRC computed on the fly, instead of
// staging the whole image (plus a per-page scratch copy) in an
// intermediate buffer. The wire bytes are identical to the buffered
// encoder this replaces.
//
// The diff page set is reconstructed by comparing the snapshot's leaf
// frames against its base's: a page belongs to the diff iff the two
// spaces map different frames at that address.
func (s *Snapshot) Export(w io.Writer) error {
	if s.deleted {
		return fmt.Errorf("%w: export of deleted snapshot", ErrCodec)
	}
	cw := &crcWriter{w: w}
	var scratch [8]byte
	putU16 := func(v uint16) {
		binary.LittleEndian.PutUint16(scratch[:2], v)
		cw.write(scratch[:2])
	}
	putU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		cw.write(scratch[:4])
	}
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		cw.write(scratch[:8])
	}
	putString := func(str string) {
		putU16(uint16(len(str)))
		cw.write([]byte(str))
	}
	cw.write([]byte(codecMagic))
	putU16(codecVersion)
	putU16(0)
	putString(s.name)
	baseName := ""
	if s.base != nil {
		baseName = s.base.name
	}
	putString(baseName)
	putU64(s.regs.PC)
	putU64(s.regs.SP)
	putU64(s.regs.Flags)
	for _, g := range s.regs.GPR {
		putU64(g)
	}

	var payloadBytes []byte
	if bm, ok := s.payload.(encoding.BinaryMarshaler); ok {
		pb, err := bm.MarshalBinary()
		if err != nil {
			return fmt.Errorf("%w: payload: %v", ErrCodec, err)
		}
		payloadBytes = pb
	}
	putU32(uint32(len(payloadBytes)))
	cw.write(payloadBytes)

	pages := s.diffPageSet()
	putU32(uint32(len(pages)))
	for _, pg := range pages {
		putU64(pg.va)
		// A nil frame is a lazy zero page (skipped at graft): wire-wise
		// identical to an unmaterialized frame, i.e. no content.
		if content := pg.frameBytes(); content != nil {
			scratch[0] = 1
			cw.write(scratch[:1])
			cw.write(content) // straight from the frame, no copy
		} else {
			scratch[0] = 0
			cw.write(scratch[:1])
		}
	}
	if cw.err != nil {
		return cw.err
	}
	binary.LittleEndian.PutUint32(scratch[:4], cw.crc)
	_, err := w.Write(scratch[:4])
	return err
}

type diffPage struct {
	va    uint64
	frame *mem.Frame // nil for a lazy zero page recorded in s.lazyZero
}

func (pg diffPage) frameBytes() []byte {
	if pg.frame == nil {
		return nil
	}
	return pg.frame.Bytes()
}

// diffPageSet walks the snapshot's space and its base's, collecting the
// pages whose frames differ, then merges in the lazy zero pages a
// sparse graft skipped — both lists are ascending, so the result is the
// exact page sequence of the original wire encoding.
func (s *Snapshot) diffPageSet() []diffPage {
	var out []diffPage
	var baseSpace *pagetable.AddressSpace
	if s.base != nil {
		baseSpace = s.base.space
	}
	for _, va := range s.space.PresentPages() {
		f, _, ok := s.space.Translate(va)
		if !ok {
			continue
		}
		if baseSpace != nil {
			if bf, _, bok := baseSpace.Translate(va); bok && bf == f {
				continue // shared with the base: not part of the diff
			}
		}
		out = append(out, diffPage{va: va, frame: f})
	}
	if len(s.lazyZero) == 0 {
		return out
	}
	merged := make([]diffPage, 0, len(out)+len(s.lazyZero))
	i, j := 0, 0
	for i < len(out) || j < len(s.lazyZero) {
		if j >= len(s.lazyZero) || (i < len(out) && out[i].va < s.lazyZero[j]) {
			merged = append(merged, out[i])
			i++
		} else {
			merged = append(merged, diffPage{va: s.lazyZero[j]})
			j++
		}
	}
	return merged
}

// ImportHeader is the decoded metadata of an exported diff.
type ImportHeader struct {
	Name     string
	BaseName string
	Regs     Registers
	Pages    int
}

// ImportedDiff is a decoded snapshot diff, ready to graft onto a base.
type ImportedDiff struct {
	Header ImportHeader
	// PayloadBytes is the opaque guest metadata shipped with the diff;
	// the receiving node decodes it (uc.DecodePayload) and attaches it
	// to the grafted snapshot.
	PayloadBytes []byte
	// PageVAs lists the diff's page addresses.
	PageVAs []uint64
	// Contents maps page addresses to 4 KiB payloads (absent for zero
	// pages).
	Contents map[uint64][]byte
	// ContentVAs lists the addresses present in Contents in wire order
	// (ascending) — the graft fast path walks it in lockstep with
	// PageVAs instead of hashing every page into Contents.
	ContentVAs []uint64
}

// LogicalBytes returns the diff's in-memory size (pages × PageSize) —
// the volume a real migration ships. In the simulation, pages whose
// content was never materialized travel as one byte on the wire (see
// WireBytes), but they stand in for real page content, so transfer
// accounting uses LogicalBytes.
func (d *ImportedDiff) LogicalBytes() int64 {
	return int64(len(d.PageVAs)) * mem.PageSize
}

// WireBytes returns the serialized size of the diff (transfer
// accounting for the simulated stream itself; real systems with
// zero-page compression approach this bound).
func (d *ImportedDiff) WireBytes() int64 {
	n := int64(len(d.PayloadBytes))
	for _, va := range d.PageVAs {
		n += 9 // va + has flag
		if _, ok := d.Contents[va]; ok {
			n += mem.PageSize
		}
	}
	return n
}

// Import decodes an exported diff from a stream. The bytes are read
// fully and decoded with ImportBytes; callers that already hold the
// encoded image in memory should call ImportBytes directly and skip
// this copy.
func Import(r io.Reader) (*ImportedDiff, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	return ImportBytes(raw)
}

// importCursor is a bounds-checked offset reader over the encoded body;
// errors are sticky.
type importCursor struct {
	b   []byte
	off int
	bad bool
}

func (c *importCursor) take(n int) []byte {
	if c.bad || n < 0 || len(c.b)-c.off < n {
		c.bad = true
		return nil
	}
	out := c.b[c.off : c.off+n : c.off+n]
	c.off += n
	return out
}

func (c *importCursor) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (c *importCursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *importCursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// ImportBytes decodes an exported diff without copying page contents:
// the returned diff's Contents (and PayloadBytes) alias subslices of
// raw. raw must remain live and unmodified for as long as the diff is
// in use — the usual pattern (shard hydration, diff grafting) decodes
// and immediately materializes into frames, which copies.
//
// This is the decode half of the zero-copy codec: a shard hydrating
// from an encoded base image no longer duplicates the whole image into
// per-page buffers before writing it into frames.
func ImportBytes(raw []byte) (*ImportedDiff, error) {
	cur, hdr, payload, npages, err := decodePreamble(raw)
	if err != nil {
		return nil, err
	}
	out := &ImportedDiff{Header: hdr, PayloadBytes: payload, Contents: make(map[uint64][]byte)}
	out.PageVAs = make([]uint64, 0, npages)
	for i := uint32(0); i < npages; i++ {
		va := cur.u64()
		has := cur.take(1)
		if cur.bad {
			return nil, fmt.Errorf("%w: page %d: truncated", ErrCodec, i)
		}
		out.PageVAs = append(out.PageVAs, va)
		if has[0] == 1 {
			content := cur.take(mem.PageSize)
			if cur.bad {
				return nil, fmt.Errorf("%w: page %d content: truncated", ErrCodec, i)
			}
			out.Contents[va] = content
			out.ContentVAs = append(out.ContentVAs, va)
		}
	}
	out.Header.Pages = len(out.PageVAs)
	return out, nil
}

// PeekWireHeader decodes an encoded diff's header — name, lineage,
// registers, page count — without touching its pages. The wire CRC is
// verified. Restore paths use it to resolve the graft base before
// handing the same bytes to GraftWire.
func PeekWireHeader(raw []byte) (ImportHeader, error) {
	_, hdr, _, _, err := decodePreamble(raw)
	return hdr, err
}

// decodePreamble validates raw's CRC and decodes everything up to (and
// including) the page count, leaving the cursor at the first page
// record. The returned payload aliases raw.
func decodePreamble(raw []byte) (*importCursor, ImportHeader, []byte, uint32, error) {
	var hdr ImportHeader
	if len(raw) < 12 {
		return nil, hdr, nil, 0, fmt.Errorf("%w: truncated", ErrCodec)
	}
	body, crcBytes := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, hdr, nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCodec)
	}
	cur := &importCursor{b: body}
	if magic := cur.take(4); magic == nil || string(magic) != codecMagic {
		return nil, hdr, nil, 0, fmt.Errorf("%w: bad magic %q", ErrCodec, magic)
	}
	version := cur.u16()
	cur.u16() // flags (reserved)
	if cur.bad {
		return nil, hdr, nil, 0, fmt.Errorf("%w: truncated header", ErrCodec)
	}
	if version != codecVersion {
		return nil, hdr, nil, 0, fmt.Errorf("%w: unsupported version %d", ErrCodec, version)
	}
	readString := func() string { return string(cur.take(int(cur.u16()))) }
	hdr.Name = readString()
	if cur.bad {
		return nil, hdr, nil, 0, fmt.Errorf("%w: name: truncated", ErrCodec)
	}
	hdr.BaseName = readString()
	if cur.bad {
		return nil, hdr, nil, 0, fmt.Errorf("%w: base: truncated", ErrCodec)
	}
	hdr.Regs.PC = cur.u64()
	hdr.Regs.SP = cur.u64()
	hdr.Regs.Flags = cur.u64()
	for i := range hdr.Regs.GPR {
		hdr.Regs.GPR[i] = cur.u64()
	}
	plen := cur.u32()
	if cur.bad {
		return nil, hdr, nil, 0, fmt.Errorf("%w: payload length: truncated", ErrCodec)
	}
	var payload []byte
	if plen > 0 {
		payload = cur.take(int(plen))
		if cur.bad {
			return nil, hdr, nil, 0, fmt.Errorf("%w: payload: truncated", ErrCodec)
		}
	}
	npages := cur.u32()
	if cur.bad {
		return nil, hdr, nil, 0, fmt.Errorf("%w: page count: truncated", ErrCodec)
	}
	// Each page costs at least 9 bytes on the wire; reject counts the
	// remaining body cannot possibly hold before allocating for them.
	if int64(npages)*9 > int64(len(body)-cur.off) {
		return nil, hdr, nil, 0, fmt.Errorf("%w: page count %d exceeds body", ErrCodec, npages)
	}
	hdr.Pages = int(npages)
	return cur, hdr, payload, npages, nil
}

// Materialize reconstructs a *root* snapshot (one exported with no
// base) inside st, backed entirely by fresh local frames. This is the
// hydration path of the sharded node pool: the base runtime image is
// booted and captured once, exported through the codec, and then
// materialized into each shard's private store — so anticipatory
// optimization and runtime boot are paid once per process, not once
// per shard.
//
// The caller is responsible for decoding and attaching the diff's
// guest payload (uc.DecodePayload); this package cannot, as the
// payload type lives above it.
func Materialize(diff *ImportedDiff, st *mem.Store) (*Snapshot, error) {
	if diff.Header.BaseName != "" {
		return nil, fmt.Errorf("%w: materialize of non-root diff %q (base %q); graft it instead",
			ErrCodec, diff.Header.Name, diff.Header.BaseName)
	}
	space, err := pagetable.New(st)
	if err != nil {
		return nil, fmt.Errorf("%w: materialize: %v", ErrCodec, err)
	}
	for _, va := range diff.PageVAs {
		if content, ok := diff.Contents[va]; ok {
			err = space.Store(va, content)
		} else {
			err = space.Touch(va)
		}
		if err != nil {
			space.Release()
			return nil, fmt.Errorf("%w: materialize page %#x: %v", ErrCodec, va, err)
		}
	}
	snap, err := Capture(diff.Header.Name, nil, space, diff.Header.Regs)
	if err != nil {
		space.Release()
		return nil, err
	}
	// The staging space served its purpose; the snapshot holds its own
	// references now.
	space.Release()
	return snap, nil
}

// Graft applies an imported diff on top of a local base snapshot,
// producing a new snapshot equivalent to the exported one (same name,
// registers, and page contents) but backed by local frames. The base's
// name must match the diff's recorded lineage.
func Graft(diff *ImportedDiff, base *Snapshot) (*Snapshot, error) {
	if base == nil {
		return nil, fmt.Errorf("%w: graft requires a base", ErrCodec)
	}
	if base.name != diff.Header.BaseName {
		return nil, fmt.Errorf("%w: base %q does not match diff lineage %q",
			ErrCodec, base.name, diff.Header.BaseName)
	}
	space, _, err := base.Deploy()
	if err != nil {
		return nil, err
	}
	for _, va := range diff.PageVAs {
		if content, ok := diff.Contents[va]; ok {
			if err := space.Store(va, content); err != nil {
				space.Release()
				base.ReleaseUC()
				return nil, err
			}
		} else if err := space.Touch(va); err != nil {
			space.Release()
			base.ReleaseUC()
			return nil, err
		}
	}
	snap, err := Capture(diff.Header.Name, base, space, diff.Header.Regs)
	if err != nil {
		space.Release()
		base.ReleaseUC()
		return nil, err
	}
	// The staging space served its purpose; the snapshot holds its own
	// references now.
	space.Release()
	base.ReleaseUC()
	return snap, nil
}

// GraftBulk is Graft's bulk-install fast path: the same contract (same
// resulting name, registers, page contents, and re-export bytes) with
// the per-page write-fault resolution, the full-tree SetCoWAll walk,
// and the second page-table clone all skipped. The diff pages are
// installed directly as read-only CoW mappings backed by fresh private
// frames, and the deployed space itself is frozen into the snapshot —
// one table walk per 2 MB span instead of a fault per page plus a walk
// over the whole tree.
//
// This is what drops the lukewarm restore's snapshot-reconstruction
// cost from O(image) to O(diff): the prefetched restore path
// (DESIGN.md §13) runs it on every promote.
func GraftBulk(diff *ImportedDiff, base *Snapshot) (*Snapshot, error) {
	if base == nil {
		return nil, fmt.Errorf("%w: graft requires a base", ErrCodec)
	}
	if base.name != diff.Header.BaseName {
		return nil, fmt.Errorf("%w: base %q does not match diff lineage %q",
			ErrCodec, base.name, diff.Header.BaseName)
	}
	space, _, err := base.Deploy()
	if err != nil {
		return nil, err
	}
	var contents [][]byte
	if len(diff.ContentVAs) > 0 {
		contents = make([][]byte, len(diff.ContentVAs))
		for i, va := range diff.ContentVAs {
			contents[i] = diff.Contents[va]
		}
	}
	lazy, err := space.InstallCoWPagesSparse(diff.PageVAs, diff.ContentVAs, contents)
	if err != nil {
		space.Release()
		base.ReleaseUC()
		return nil, err
	}
	space.Freeze()
	snap := &Snapshot{
		name:      diff.Header.Name,
		base:      base,
		space:     space,
		regs:      diff.Header.Regs,
		diffPages: len(diff.PageVAs),
		lazyZero:  lazy,
	}
	base.children++
	base.ReleaseUC()
	return snap, nil
}

// GraftWire is ImportBytes fused with GraftBulk: one pass over the
// encoded diff that installs (or lazily skips) each page as it is
// decoded, with no intermediate page list, content table, or diff
// struct. Validation, the resulting snapshot, and its re-export bytes
// are identical to the two-step path. The second return value is the
// diff's opaque payload bytes (aliasing raw; decode with
// uc.DecodePayload and attach via SetPayload).
//
// This is the restore path's entry point: a lukewarm promote decodes
// straight from the snapstore read buffer into page-table state.
func GraftWire(raw []byte, base *Snapshot) (*Snapshot, []byte, error) {
	if base == nil {
		return nil, nil, fmt.Errorf("%w: graft requires a base", ErrCodec)
	}
	cur, hdr, payload, npages, err := decodePreamble(raw)
	if err != nil {
		return nil, nil, err
	}
	if base.name != hdr.BaseName {
		return nil, nil, fmt.Errorf("%w: base %q does not match diff lineage %q",
			ErrCodec, base.name, hdr.BaseName)
	}
	space, _, err := base.Deploy()
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*Snapshot, []byte, error) {
		space.Release()
		base.ReleaseUC()
		return nil, nil, err
	}
	si := space.NewSparseInstaller(int(npages))
	for i := uint32(0); i < npages; i++ {
		va := cur.u64()
		has := cur.take(1)
		if cur.bad {
			return fail(fmt.Errorf("%w: page %d: truncated", ErrCodec, i))
		}
		var content []byte
		if has[0] == 1 {
			content = cur.take(mem.PageSize)
			if cur.bad {
				return fail(fmt.Errorf("%w: page %d content: truncated", ErrCodec, i))
			}
		}
		if err := si.Page(va, content); err != nil {
			return fail(err)
		}
	}
	space.Freeze()
	snap := &Snapshot{
		name:      hdr.Name,
		base:      base,
		space:     space,
		regs:      hdr.Regs,
		diffPages: int(npages),
		lazyZero:  si.Lazy(),
	}
	base.children++
	base.ReleaseUC()
	return snap, payload, nil
}
