package snapshot

// Working-set sidecar wire format — the per-lineage record of pages a
// lukewarm restore touched, persisted by the snapshot tier beside the
// stack it describes and replayed by later restores to turn the serial
// first-touch fault storm into one bulk mapping (REAP, arXiv
// 2101.09355; ROADMAP open item 1).
//
//	magic   [4]byte  "SEWS"
//	version uint16
//	count   uint32
//	pages   count * uvarint — page indices (va >> PageShift),
//	        delta-encoded: the first value is the index itself, each
//	        subsequent value is the strictly-positive increment over
//	        the previous index
//	crc32   uint32 over everything above (IEEE, little endian)
//
// The encoding is deterministic: the same page set always produces the
// same bytes, which is what lets the record live as a content-addressed
// sidecar (same digest ⇒ same file, untouched by re-demotions) and
// ship over the fabric unchanged.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"seuss/internal/mem"
	"seuss/internal/pagetable"
)

const wsMagic = "SEWS"
const wsVersion = 1

// wsHeaderLen is magic + version + count; wsMinLen adds the CRC.
const wsHeaderLen = 4 + 2 + 4
const wsMinLen = wsHeaderLen + 4

// maxWorkingSetPages bounds a decoded record: 2^20 pages is 4 GiB of
// touched memory, far beyond any UC working set. A hostile count is
// rejected before the allocation it implies.
const maxWorkingSetPages = 1 << 20

// maxPageIndex is one past the highest encodable page index (the
// 48-bit canonical space in pages).
const maxPageIndex = pagetable.MaxVirtual >> mem.PageShift

// EncodeWorkingSet serializes a working-set record. pages must be
// page-aligned page-base VAs, sorted strictly increasing — exactly the
// shape AddressSpace.DirtyPages returns.
func EncodeWorkingSet(pages []uint64) ([]byte, error) {
	if len(pages) > maxWorkingSetPages {
		return nil, fmt.Errorf("%w: working set of %d pages exceeds limit", ErrCodec, len(pages))
	}
	buf := make([]byte, 0, wsMinLen+len(pages)*2)
	buf = append(buf, wsMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, wsVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pages)))
	prev := uint64(0)
	for i, va := range pages {
		if va%mem.PageSize != 0 {
			return nil, fmt.Errorf("%w: working-set page %#x not page-aligned", ErrCodec, va)
		}
		idx := va >> mem.PageShift
		if idx >= maxPageIndex {
			return nil, fmt.Errorf("%w: working-set page %#x out of range", ErrCodec, va)
		}
		delta := idx
		if i > 0 {
			if idx <= prev {
				return nil, fmt.Errorf("%w: working-set pages not strictly increasing at %#x", ErrCodec, va)
			}
			delta = idx - prev
		}
		buf = binary.AppendUvarint(buf, delta)
		prev = idx
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf)), nil
}

// DecodeWorkingSet parses a working-set record back into sorted
// page-base VAs. Like the snapshot decoder, it never panics and never
// allocates proportionally more than its input: the checksum is
// verified first, and a count the body cannot hold is rejected before
// the slice it implies.
func DecodeWorkingSet(data []byte) ([]uint64, error) {
	if len(data) < wsMinLen {
		return nil, fmt.Errorf("%w: working set truncated", ErrCodec)
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, fmt.Errorf("%w: working set checksum mismatch", ErrCodec)
	}
	if string(body[:4]) != wsMagic {
		return nil, fmt.Errorf("%w: bad working-set magic %q", ErrCodec, body[:4])
	}
	if v := binary.LittleEndian.Uint16(body[4:6]); v != wsVersion {
		return nil, fmt.Errorf("%w: unsupported working-set version %d", ErrCodec, v)
	}
	count := binary.LittleEndian.Uint32(body[6:wsHeaderLen])
	rest := body[wsHeaderLen:]
	// Each index costs at least one uvarint byte.
	if count > maxWorkingSetPages || int64(count) > int64(len(rest)) {
		return nil, fmt.Errorf("%w: working-set count %d exceeds body", ErrCodec, count)
	}
	pages := make([]uint64, 0, count)
	prev := uint64(0)
	for i := uint32(0); i < count; i++ {
		delta, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("%w: working-set index %d truncated", ErrCodec, i)
		}
		rest = rest[n:]
		idx := delta
		if i > 0 {
			if delta == 0 {
				return nil, fmt.Errorf("%w: working-set indices not strictly increasing", ErrCodec)
			}
			idx = prev + delta
			if idx < prev { // overflow
				return nil, fmt.Errorf("%w: working-set index overflow", ErrCodec)
			}
		}
		if idx >= maxPageIndex {
			return nil, fmt.Errorf("%w: working-set index %d out of range", ErrCodec, idx)
		}
		pages = append(pages, idx<<mem.PageShift)
		prev = idx
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after working set", ErrCodec, len(rest))
	}
	return pages, nil
}

// MergeWorkingSets returns the sorted union of two page sets (each
// sorted strictly increasing) — the drift-merge rule: a record only
// ever grows, so a page observed once keeps being prefetched even if a
// later run skips it.
func MergeWorkingSets(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
