// Package snapshot implements SEUSS snapshots and snapshot stacks (§3, §6).
//
// A snapshot is an immutable data object expressing the instantaneous
// execution state of a unikernel context: its address space and
// registers. Snapshots act as templates — an arbitrary number of UCs can
// be launched from one snapshot concurrently and over time.
//
// Snapshot stacks express lineage: each snapshot is a page-level diff on
// its base. Capture takes the complete page-table structure but shares
// every page with the captured UC (and, transitively, with the UC's own
// base snapshot), so a function-specific snapshot costs only its dirty
// pages plus a handful of table nodes. The mechanism:
//
//  1. The source space's writable entries are downgraded to read-only
//     CoW (SetCoWAll) — writes the source issues afterwards fault and
//     clone, exactly the "transparent continuation" of §6.
//  2. The snapshot takes a shallow clone of the page-table structure
//     and freezes it.
//  3. The source's dirty list — the pages modified since it was
//     deployed — is recorded as the snapshot's diff and then cleared.
//
// Deletion safety follows §6: a snapshot can only be deleted when no
// other snapshots or UCs depend on it.
package snapshot

import (
	"errors"
	"fmt"

	"seuss/internal/mem"
	"seuss/internal/pagetable"
)

// Registers is the captured CPU register state of a UC. Deployment
// overwrites the breakpoint exception frame with these values, resuming
// execution at the instruction where the snapshot was triggered.
type Registers struct {
	PC    uint64
	SP    uint64
	Flags uint64
	GPR   [14]uint64
}

// ErrInUse is returned by Delete while UCs or descendant snapshots
// still depend on the snapshot.
var ErrInUse = errors.New("snapshot: in use by UCs or descendant snapshots")

// ErrDeleted is returned when deploying from a deleted snapshot.
var ErrDeleted = errors.New("snapshot: deleted")

// Snapshot is an immutable UC image. Create one with Capture; deploy
// new address spaces from it with Deploy.
type Snapshot struct {
	name      string
	base      *Snapshot
	space     *pagetable.AddressSpace
	regs      Registers
	diffPages int
	children  int
	activeUCs int
	deploys   int64
	deleted   bool
	payload   interface{}
	// lazyZero lists diff page VAs (ascending) that GraftBulk left
	// uninstalled because the fault path rehydrates them identically
	// (no content, and the base reads as zeros there). They are still
	// part of the diff: export merges them back as zero pages so the
	// re-encoded wire bytes — and therefore the content digest — match
	// the original exactly.
	lazyZero []uint64
	// kits caches retired deploy kits — opaque bundles of guest-side
	// structures (UC shell, unikernel, interpreter) whose state still
	// equals this snapshot's payload, parked here by the UC layer at
	// destroy time so the next deploy can skip guest rehydration
	// allocations entirely. The snapshot layer never looks inside.
	kits []interface{}
}

// maxDeployKits bounds the per-snapshot kit cache; beyond it, retired
// kits are dropped for the GC.
const maxDeployKits = 64

// CacheDeployKit parks a retired deploy kit for reuse by a future
// Deploy from this snapshot. Returns false (kit not retained) when the
// snapshot is deleted or the cache is full.
func (s *Snapshot) CacheDeployKit(kit interface{}) bool {
	if s == nil || s.deleted || len(s.kits) >= maxDeployKits {
		return false
	}
	s.kits = append(s.kits, kit)
	return true
}

// TakeDeployKit removes and returns a cached deploy kit, or nil.
func (s *Snapshot) TakeDeployKit() interface{} {
	n := len(s.kits)
	if n == 0 {
		return nil
	}
	kit := s.kits[n-1]
	s.kits[n-1] = nil
	s.kits = s.kits[:n-1]
	return kit
}

// CachedDeployKits returns the number of parked kits (stats/tests).
func (s *Snapshot) CachedDeployKits() int { return len(s.kits) }

// SetPayload attaches opaque guest metadata to the snapshot. On real
// hardware this state lives inside the captured memory image; the
// simulation carries it alongside so deployment can rehydrate the
// Go-level guest objects. Payload is set once, at capture time.
func (s *Snapshot) SetPayload(p interface{}) { s.payload = p }

// Payload returns the guest metadata attached at capture.
func (s *Snapshot) Payload() interface{} { return s.payload }

// Capture freezes the current state of src into a new snapshot layered
// on base (nil for a root snapshot, e.g. the per-interpreter runtime
// snapshot). src continues to be usable by its UC: its pages become
// read-only CoW and later writes transparently clone.
//
// The returned snapshot's diff is exactly src's dirty set at the moment
// of capture; src's dirty tracking is reset.
func Capture(name string, base *Snapshot, src *pagetable.AddressSpace, regs Registers) (*Snapshot, error) {
	if src.Frozen() {
		return nil, fmt.Errorf("snapshot: capturing %q from a frozen space", name)
	}
	diff := src.DirtyCount()
	src.SetCoWAll()
	space, err := src.Clone()
	if err != nil {
		return nil, fmt.Errorf("snapshot: capture %q: %w", name, err)
	}
	space.Freeze()
	src.ClearDirty()
	s := &Snapshot{
		name:      name,
		base:      base,
		space:     space,
		regs:      regs,
		diffPages: diff,
	}
	if base != nil {
		base.children++
	}
	return s, nil
}

// Name returns the snapshot's identifying name (e.g. "nodejs-runtime",
// or a function key for function-specific snapshots).
func (s *Snapshot) Name() string { return s.name }

// Base returns the snapshot this one diffs against, or nil for a root
// snapshot.
func (s *Snapshot) Base() *Snapshot { return s.base }

// Registers returns the captured register state.
func (s *Snapshot) Registers() Registers { return s.regs }

// DiffPages returns the number of pages this snapshot captured beyond
// its base — the page-level diff size of §3.
func (s *Snapshot) DiffPages() int { return s.diffPages }

// DiffBytes returns the diff size in bytes. For a root snapshot this is
// the full image size (every page the UC wrote since boot); for stacked
// snapshots it is the increment Table 1 reports (e.g. 2 MB for a NOP
// function over the 114.5 MB Node.js runtime snapshot).
func (s *Snapshot) DiffBytes() int64 { return int64(s.diffPages) * mem.PageSize }

// StackDepth returns the number of snapshots in this snapshot's stack,
// including itself.
func (s *Snapshot) StackDepth() int {
	d := 0
	for cur := s; cur != nil; cur = cur.base {
		d++
	}
	return d
}

// TotalBytes returns the cumulative unique bytes of the whole stack:
// the sum of every ancestor's diff. Deploying a UC makes all of it
// reachable while costing none of it.
func (s *Snapshot) TotalBytes() int64 {
	var total int64
	for cur := s; cur != nil; cur = cur.base {
		total += cur.DiffBytes()
	}
	return total
}

// Children returns the number of snapshots layered directly on this one.
func (s *Snapshot) Children() int { return s.children }

// ActiveUCs returns the number of address spaces deployed from this
// snapshot that have not yet been released.
func (s *Snapshot) ActiveUCs() int { return s.activeUCs }

// Deploys returns the lifetime count of deployments.
func (s *Snapshot) Deploys() int64 { return s.deploys }

// Deleted reports whether Delete has succeeded on this snapshot.
func (s *Snapshot) Deleted() bool { return s.deleted }

// Deploy creates a new address space from the snapshot — a shallow copy
// of the page-table structure whose cost is independent of image size —
// and returns it with the captured registers. The caller owns the space
// and must pair this with ReleaseUC when the UC is destroyed or itself
// captured away.
func (s *Snapshot) Deploy() (*pagetable.AddressSpace, Registers, error) {
	if s.deleted {
		return nil, Registers{}, ErrDeleted
	}
	space, err := s.space.Clone()
	if err != nil {
		return nil, Registers{}, fmt.Errorf("snapshot: deploy from %q: %w", s.name, err)
	}
	s.activeUCs++
	s.deploys++
	return space, s.regs, nil
}

// ReleaseUC records that an address space obtained from Deploy has been
// released.
func (s *Snapshot) ReleaseUC() {
	if s.activeUCs <= 0 {
		panic("snapshot: ReleaseUC without Deploy")
	}
	s.activeUCs--
}

// Delete releases the snapshot's memory. It fails with ErrInUse while
// any UC deployed from it is alive or any descendant snapshot exists —
// the prototype's rule of only deleting function-specific snapshots
// with no active dependents.
func (s *Snapshot) Delete() error {
	if s.deleted {
		return nil
	}
	if s.children > 0 || s.activeUCs > 0 {
		return ErrInUse
	}
	s.space.Release()
	s.space = nil
	s.kits = nil
	s.deleted = true
	if s.base != nil {
		s.base.children--
		s.base = nil
	}
	return nil
}

// FootprintPages returns the number of private page-table pages plus
// diff pages this snapshot holds — its true marginal memory cost.
func (s *Snapshot) FootprintPages() int {
	if s.deleted {
		return 0
	}
	_, private := s.space.TableNodes()
	return s.diffPages + private
}
