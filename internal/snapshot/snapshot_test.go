package snapshot

import (
	"testing"
	"testing/quick"

	"seuss/internal/mem"
	"seuss/internal/pagetable"
)

// bootSpace simulates a freshly booted UC that has written n pages.
func bootSpace(t *testing.T, st *mem.Store, n int) *pagetable.AddressSpace {
	t.Helper()
	as, err := pagetable.New(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := as.Store(uint64(i)*mem.PageSize, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	return as
}

func TestCaptureRecordsDiff(t *testing.T) {
	st := mem.NewStore(0)
	as := bootSpace(t, st, 10)
	s, err := Capture("runtime", nil, as, Registers{PC: 0xfff})
	if err != nil {
		t.Fatal(err)
	}
	if s.DiffPages() != 10 {
		t.Errorf("DiffPages = %d, want 10", s.DiffPages())
	}
	if s.DiffBytes() != 10*mem.PageSize {
		t.Errorf("DiffBytes = %d", s.DiffBytes())
	}
	if s.Registers().PC != 0xfff {
		t.Error("registers not captured")
	}
	if as.DirtyCount() != 0 {
		t.Error("source dirty list not cleared")
	}
}

func TestSourceContinuesTransparently(t *testing.T) {
	st := mem.NewStore(0)
	as := bootSpace(t, st, 4)
	s, err := Capture("runtime", nil, as, Registers{})
	if err != nil {
		t.Fatal(err)
	}
	// Source keeps running and writes: must CoW-clone, not corrupt the
	// snapshot.
	if err := as.Store(0, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	dep, _, err := s.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	dep.Load(0, b)
	if b[0] != 1 {
		t.Errorf("snapshot corrupted by post-capture source write: %#x", b[0])
	}
	if as.Faults.CoW != 1 {
		t.Errorf("source faults = %+v, want 1 CoW", as.Faults)
	}
}

func TestDeployIsolation(t *testing.T) {
	st := mem.NewStore(0)
	as := bootSpace(t, st, 4)
	s, _ := Capture("runtime", nil, as, Registers{})
	a, _, _ := s.Deploy()
	b, _, _ := s.Deploy()
	a.Store(0, []byte{0xAA})
	b.Store(0, []byte{0xBB})
	ab, bb := make([]byte, 1), make([]byte, 1)
	a.Load(0, ab)
	b.Load(0, bb)
	if ab[0] != 0xAA || bb[0] != 0xBB {
		t.Errorf("deployments interfered: %x %x", ab, bb)
	}
	if s.ActiveUCs() != 2 || s.Deploys() != 2 {
		t.Errorf("counts: active=%d deploys=%d", s.ActiveUCs(), s.Deploys())
	}
}

func TestDeployCostIndependentOfImageSize(t *testing.T) {
	st := mem.NewStore(0)
	as := bootSpace(t, st, 512) // fills two PT nodes
	s, _ := Capture("big", nil, as, Registers{})
	before := st.Stats().FramesInUse
	if _, _, err := s.Deploy(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().FramesInUse - before; got != 1 {
		t.Errorf("deploy allocated %d frames, want 1 (root only)", got)
	}
}

func TestSnapshotStack(t *testing.T) {
	st := mem.NewStore(0)
	boot := bootSpace(t, st, 100) // "interpreter": 100 pages
	runtime, err := Capture("runtime", nil, boot, Registers{})
	if err != nil {
		t.Fatal(err)
	}

	// Cold path: deploy, import function Foo (writes 5 pages), capture.
	fooSpace, _, _ := runtime.Deploy()
	for i := 0; i < 5; i++ {
		fooSpace.Store(uint64(200+i)*mem.PageSize, []byte{0xF0})
	}
	foo, err := Capture("foo", runtime, fooSpace, Registers{})
	if err != nil {
		t.Fatal(err)
	}
	if foo.DiffPages() != 5 {
		t.Errorf("foo diff = %d, want 5", foo.DiffPages())
	}
	if foo.Base() != runtime {
		t.Error("foo base wrong")
	}
	if foo.StackDepth() != 2 {
		t.Errorf("depth = %d", foo.StackDepth())
	}
	if runtime.Children() != 1 {
		t.Errorf("runtime children = %d", runtime.Children())
	}

	// The §3 example: two functions share the interpreter. Total unique
	// bytes = runtime + foo diff + bar diff, not 2x runtime.
	barSpace, _, _ := runtime.Deploy()
	for i := 0; i < 7; i++ {
		barSpace.Store(uint64(300+i)*mem.PageSize, []byte{0xBA})
	}
	bar, _ := Capture("bar", runtime, barSpace, Registers{})
	if got := runtime.TotalBytes() + foo.DiffBytes() + bar.DiffBytes(); got != int64(100+5+7)*mem.PageSize {
		t.Errorf("stack bytes = %d", got)
	}

	// Deploy from foo: sees interpreter pages AND foo's pages.
	uc, _, _ := foo.Deploy()
	b := make([]byte, 1)
	uc.Load(0, b)
	if b[0] != 1 {
		t.Error("UC missing interpreter page")
	}
	uc.Load(202*mem.PageSize, b)
	if b[0] != 0xF0 {
		t.Error("UC missing foo page")
	}
	uc.Load(302*mem.PageSize, b)
	if b[0] != 0 {
		t.Error("UC sees bar page through foo snapshot")
	}
}

func TestDeleteSafety(t *testing.T) {
	st := mem.NewStore(0)
	boot := bootSpace(t, st, 10)
	runtime, _ := Capture("runtime", nil, boot, Registers{})
	fnSpace, _, _ := runtime.Deploy()
	fnSpace.Store(0x999000, []byte{1})
	fn, _ := Capture("fn", runtime, fnSpace, Registers{})

	// Runtime has a child: cannot delete.
	if err := runtime.Delete(); err != ErrInUse {
		t.Errorf("delete with child: %v", err)
	}

	uc, _, _ := fn.Deploy()
	if err := fn.Delete(); err != ErrInUse {
		t.Errorf("delete with active UC: %v", err)
	}
	uc.Release()
	fn.ReleaseUC()
	if err := fn.Delete(); err != nil {
		t.Errorf("delete idle fn snapshot: %v", err)
	}
	if !fn.Deleted() {
		t.Error("not marked deleted")
	}
	// Idempotent.
	if err := fn.Delete(); err != nil {
		t.Errorf("re-delete: %v", err)
	}
	// Note: the UC that fn was captured FROM (fnSpace) still holds
	// references via runtime's Deploy — release it, then runtime can go.
	fnSpace.Release()
	runtime.ReleaseUC()
	if err := runtime.Delete(); err != nil {
		t.Errorf("delete runtime after children gone: %v", err)
	}
}

func TestDeployFromDeleted(t *testing.T) {
	st := mem.NewStore(0)
	boot := bootSpace(t, st, 1)
	s, _ := Capture("s", nil, boot, Registers{})
	boot.Release()
	if err := s.Delete(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Deploy(); err != ErrDeleted {
		t.Errorf("err = %v", err)
	}
	if s.FootprintPages() != 0 {
		t.Error("deleted snapshot reports footprint")
	}
}

func TestReleaseUCUnderflowPanics(t *testing.T) {
	st := mem.NewStore(0)
	boot := bootSpace(t, st, 1)
	s, _ := Capture("s", nil, boot, Registers{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.ReleaseUC()
}

func TestCaptureFromFrozenFails(t *testing.T) {
	st := mem.NewStore(0)
	boot := bootSpace(t, st, 1)
	boot.SetCoWAll()
	boot.Freeze()
	if _, err := Capture("bad", nil, boot, Registers{}); err == nil {
		t.Fatal("capture from frozen space succeeded")
	}
}

func TestNoFrameLeaksThroughLifecycle(t *testing.T) {
	st := mem.NewStore(0)
	boot := bootSpace(t, st, 50)
	runtime, _ := Capture("runtime", nil, boot, Registers{})
	boot.Release()

	for i := 0; i < 10; i++ {
		space, _, _ := runtime.Deploy()
		space.Store(uint64(1000+i)*mem.PageSize, []byte{1})
		space.Release()
		runtime.ReleaseUC()
	}
	if err := runtime.Delete(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().FramesInUse; got != 0 {
		t.Errorf("leaked %d frames", got)
	}
}

func TestFootprintPages(t *testing.T) {
	st := mem.NewStore(0)
	boot := bootSpace(t, st, 8)
	runtime, _ := Capture("runtime", nil, boot, Registers{})
	fp := runtime.FootprintPages()
	// 8 diff pages + at least the root table node.
	if fp < 9 {
		t.Errorf("FootprintPages = %d", fp)
	}
}

// Property: any write pattern on a deployed UC never changes what a
// second, later deployment reads (snapshot immutability).
func TestQuickImmutability(t *testing.T) {
	prop := func(writes []uint16) bool {
		st := mem.NewStore(0)
		boot, err := pagetable.New(st)
		if err != nil {
			return false
		}
		for i := 0; i < 32; i++ {
			boot.Store(uint64(i)*mem.PageSize, []byte{byte(i ^ 0x5A)})
		}
		s, err := Capture("s", nil, boot, Registers{})
		if err != nil {
			return false
		}
		first, _, _ := s.Deploy()
		for _, w := range writes {
			first.Store(uint64(w%64)*mem.PageSize, []byte{0xFF})
		}
		second, _, _ := s.Deploy()
		for i := 0; i < 32; i++ {
			b := make([]byte, 1)
			second.Load(uint64(i)*mem.PageSize, b)
			if b[0] != byte(i^0x5A) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: diff pages of a capture equals the number of distinct pages
// written since deployment.
func TestQuickDiffEqualsDistinctWrites(t *testing.T) {
	prop := func(writes []uint16) bool {
		st := mem.NewStore(0)
		boot, err := pagetable.New(st)
		if err != nil {
			return false
		}
		boot.Store(0, []byte{1})
		base, err := Capture("base", nil, boot, Registers{})
		if err != nil {
			return false
		}
		uc, _, _ := base.Deploy()
		distinct := map[uint64]bool{}
		for _, w := range writes {
			va := uint64(w%128) * mem.PageSize
			uc.Store(va, []byte{2})
			distinct[va] = true
		}
		diff, err := Capture("diff", base, uc, Registers{})
		if err != nil {
			return false
		}
		return diff.DiffPages() == len(distinct)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
