package snapshot

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"seuss/internal/mem"
	"seuss/internal/pagetable"
)

// buildStack creates a base snapshot (8 content pages) plus a child
// snapshot diffing 3 pages on top of it.
func buildStack(t *testing.T, st *mem.Store) (base, child *Snapshot) {
	t.Helper()
	boot, err := pagetable.New(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		boot.Store(uint64(i)*mem.PageSize, []byte{0xB0, byte(i)})
	}
	base, err = Capture("runtime/nodejs", nil, boot, Registers{PC: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	space, _, err := base.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	space.Store(2*mem.PageSize, []byte("function code"))     // CoW over base
	space.Store(100*mem.PageSize, []byte("fresh heap page")) // new page
	space.Touch(200 * mem.PageSize)                          // zero page
	child, err = Capture("fn/foo", base, space, Registers{PC: 0x2b80, SP: 0x7fff})
	if err != nil {
		t.Fatal(err)
	}
	return base, child
}

func TestExportImportRoundTrip(t *testing.T) {
	st := mem.NewStore(0)
	base, child := buildStack(t, st)

	var buf bytes.Buffer
	if err := child.Export(&buf); err != nil {
		t.Fatal(err)
	}
	diff, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Header.Name != "fn/foo" || diff.Header.BaseName != "runtime/nodejs" {
		t.Errorf("header = %+v", diff.Header)
	}
	if diff.Header.Regs.PC != 0x2b80 || diff.Header.Regs.SP != 0x7fff {
		t.Errorf("regs = %+v", diff.Header.Regs)
	}
	if diff.Header.Pages != 3 {
		t.Errorf("pages = %d, want 3 (the diff only)", diff.Header.Pages)
	}
	if string(bytes.TrimRight(diff.Contents[2*mem.PageSize][:13], "\x00")) != "function code" {
		t.Error("content page lost")
	}
	if _, hasZero := diff.Contents[200*mem.PageSize]; hasZero {
		t.Error("zero page shipped content")
	}
	if diff.WireBytes() <= 0 {
		t.Error("wire accounting")
	}
	_ = base
}

func TestGraftReproducesSnapshot(t *testing.T) {
	// Export from "machine A", graft onto "machine B"'s own base image.
	stA := mem.NewStore(0)
	_, childA := buildStack(t, stA)
	var wire bytes.Buffer
	if err := childA.Export(&wire); err != nil {
		t.Fatal(err)
	}

	stB := mem.NewStore(0)
	baseB, _ := buildStack(t, stB)
	diff, err := Import(&wire)
	if err != nil {
		t.Fatal(err)
	}
	grafted, err := Graft(diff, baseB)
	if err != nil {
		t.Fatal(err)
	}
	if grafted.Base() != baseB {
		t.Error("graft not stacked on local base")
	}
	if grafted.Registers().PC != 0x2b80 {
		t.Error("registers lost")
	}

	// A UC deployed from the graft sees both the local base pages and
	// the migrated diff pages.
	space, regs, err := grafted.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	if regs.PC != 0x2b80 {
		t.Error("deploy regs wrong")
	}
	b := make([]byte, 13)
	space.Load(2*mem.PageSize, b)
	if string(b) != "function code" {
		t.Errorf("diff page = %q", b)
	}
	b2 := make([]byte, 2)
	space.Load(3*mem.PageSize, b2)
	if b2[0] != 0xB0 || b2[1] != 3 {
		t.Errorf("base page = %v", b2)
	}
}

func TestGraftRejectsWrongLineage(t *testing.T) {
	stA := mem.NewStore(0)
	_, childA := buildStack(t, stA)
	var wire bytes.Buffer
	childA.Export(&wire)
	diff, err := Import(&wire)
	if err != nil {
		t.Fatal(err)
	}

	// A base with a different name (different interpreter image).
	stB := mem.NewStore(0)
	boot, _ := pagetable.New(stB)
	boot.Store(0, []byte{1})
	otherBase, _ := Capture("runtime/python", nil, boot, Registers{})
	if _, err := Graft(diff, otherBase); err == nil {
		t.Fatal("graft onto mismatched base succeeded")
	}
	if _, err := Graft(diff, nil); err == nil {
		t.Fatal("graft onto nil base succeeded")
	}
}

func TestImportRejectsCorruption(t *testing.T) {
	st := mem.NewStore(0)
	_, child := buildStack(t, st)
	var wire bytes.Buffer
	child.Export(&wire)
	raw := wire.Bytes()

	// Flip a byte in the middle: checksum must catch it.
	corrupted := make([]byte, len(raw))
	copy(corrupted, raw)
	corrupted[len(corrupted)/2] ^= 0xFF
	if _, err := Import(bytes.NewReader(corrupted)); err == nil {
		t.Error("corruption accepted")
	}

	// Truncation.
	if _, err := Import(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncation accepted")
	}
	// Garbage.
	if _, err := Import(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage accepted")
	}
	// Empty.
	if _, err := Import(strings.NewReader("")); err == nil {
		t.Error("empty accepted")
	}
}

func TestExportDeletedSnapshotFails(t *testing.T) {
	st := mem.NewStore(0)
	boot, _ := pagetable.New(st)
	boot.Store(0, []byte{1})
	s, _ := Capture("s", nil, boot, Registers{})
	boot.Release()
	if err := s.Delete(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Export(&buf); err == nil {
		t.Error("export of deleted snapshot succeeded")
	}
}

func TestRootSnapshotExport(t *testing.T) {
	// A root snapshot's diff is its whole image.
	st := mem.NewStore(0)
	base, _ := buildStack(t, st)
	var buf bytes.Buffer
	if err := base.Export(&buf); err != nil {
		t.Fatal(err)
	}
	diff, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Header.BaseName != "" {
		t.Errorf("base name = %q", diff.Header.BaseName)
	}
	if diff.Header.Pages != 8 {
		t.Errorf("pages = %d, want the full 8-page image", diff.Header.Pages)
	}
}

// Property: any randomly generated diff round-trips through the codec
// byte-for-byte (names, registers, page set, contents).
func TestQuickCodecRoundTrip(t *testing.T) {
	prop := func(pageSel []uint16, content []byte, pcSeed uint64) bool {
		st := mem.NewStore(0)
		boot, err := pagetable.New(st)
		if err != nil {
			return false
		}
		boot.Store(0, []byte{1}) // base has one page
		base, err := Capture("runtime/x", nil, boot, Registers{})
		if err != nil {
			return false
		}
		space, _, err := base.Deploy()
		if err != nil {
			return false
		}
		written := map[uint64][]byte{}
		for i, sel := range pageSel {
			va := (uint64(sel%512) + 1) * mem.PageSize
			if i%3 == 0 || len(content) == 0 {
				space.Touch(va)
				if _, ok := written[va]; !ok {
					written[va] = nil
				}
			} else {
				b := content[i%len(content)]
				space.Store(va, []byte{b})
				written[va] = []byte{b}
			}
		}
		snap, err := Capture("fn/q", base, space, Registers{PC: pcSeed})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := snap.Export(&buf); err != nil {
			return false
		}
		diff, err := Import(&buf)
		if err != nil {
			return false
		}
		if diff.Header.Name != "fn/q" || diff.Header.Regs.PC != pcSeed {
			return false
		}
		if diff.Header.Pages != len(written) {
			return false
		}
		for va, want := range written {
			got, has := diff.Contents[va]
			if want == nil {
				// Touched-only pages may legitimately carry no content.
				if has && got[0] != 0 {
					return false
				}
				continue
			}
			if !has || got[0] != want[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
