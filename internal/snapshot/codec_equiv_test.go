package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"

	"seuss/internal/mem"
	"seuss/internal/pagetable"
)

// buildTestSnapshot makes a snapshot with a mix of materialized and
// zero pages, deliberately cycling frames through the pool first so the
// export path reads from recycled buffers.
func buildTestSnapshot(t *testing.T, name string) (*Snapshot, *mem.Store) {
	t.Helper()
	st := mem.NewStore(0)
	// Churn the frame pool so exported frames are recycled ones.
	churn := make([]*mem.Frame, 32)
	for i := range churn {
		churn[i] = st.MustAlloc()
		churn[i].Write(0, []byte{0xEE, byte(i)})
	}
	for _, f := range churn {
		st.DecRef(f)
	}
	space, err := pagetable.New(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		va := uint64(i) * mem.PageSize
		if i%3 == 0 {
			if err := space.Touch(va); err != nil { // zero page
				t.Fatal(err)
			}
		} else {
			content := bytes.Repeat([]byte{byte(i)}, 97)
			if err := space.Store(va+5, content); err != nil {
				t.Fatal(err)
			}
		}
	}
	regs := Registers{PC: 0x1234, SP: 0x5678, Flags: 2}
	for i := range regs.GPR {
		regs.GPR[i] = uint64(i * 17)
	}
	snap, err := Capture(name, nil, space, regs)
	if err != nil {
		t.Fatal(err)
	}
	space.Release()
	return snap, st
}

// referenceExport is the pre-zero-copy encoder, kept verbatim as the
// equivalence oracle: buffered bytes.Buffer construction, binary.Write,
// and a per-page scratch copy.
func referenceExport(s *Snapshot, w *bytes.Buffer) {
	var buf bytes.Buffer
	buf.WriteString(codecMagic)
	writeU16 := func(v uint16) { binary.Write(&buf, binary.LittleEndian, v) }
	writeU16(codecVersion)
	writeU16(0)
	writeString := func(str string) {
		writeU16(uint16(len(str)))
		buf.WriteString(str)
	}
	writeString(s.name)
	baseName := ""
	if s.base != nil {
		baseName = s.base.name
	}
	writeString(baseName)
	binary.Write(&buf, binary.LittleEndian, s.regs.PC)
	binary.Write(&buf, binary.LittleEndian, s.regs.SP)
	binary.Write(&buf, binary.LittleEndian, s.regs.Flags)
	for _, g := range s.regs.GPR {
		binary.Write(&buf, binary.LittleEndian, g)
	}
	binary.Write(&buf, binary.LittleEndian, uint32(0)) // no payload
	pages := s.diffPageSet()
	binary.Write(&buf, binary.LittleEndian, uint32(len(pages)))
	content := make([]byte, mem.PageSize)
	for _, pg := range pages {
		binary.Write(&buf, binary.LittleEndian, pg.va)
		if pg.frame.Materialized() {
			buf.WriteByte(1)
			pg.frame.Read(0, content)
			buf.Write(content)
		} else {
			buf.WriteByte(0)
		}
	}
	binary.Write(&buf, binary.LittleEndian, crc32.ChecksumIEEE(buf.Bytes()))
	w.Write(buf.Bytes())
}

// TestZeroCopyExportByteIdentical: the streaming zero-copy encoder must
// produce the exact wire bytes of the buffered reference encoder.
func TestZeroCopyExportByteIdentical(t *testing.T) {
	snap, _ := buildTestSnapshot(t, "equiv")
	var streamed, reference bytes.Buffer
	if err := snap.Export(&streamed); err != nil {
		t.Fatal(err)
	}
	referenceExport(snap, &reference)
	if !bytes.Equal(streamed.Bytes(), reference.Bytes()) {
		t.Fatalf("zero-copy export differs from reference: %d vs %d bytes",
			streamed.Len(), reference.Len())
	}
}

// TestImportBytesMatchesImport: the aliasing decoder and the streaming
// decoder must produce equal diffs, and the aliasing one must not copy
// page contents.
func TestImportBytesMatchesImport(t *testing.T) {
	snap, _ := buildTestSnapshot(t, "equiv2")
	var wire bytes.Buffer
	if err := snap.Export(&wire); err != nil {
		t.Fatal(err)
	}
	raw := wire.Bytes()
	viaReader, err := Import(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	viaBytes, err := ImportBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaReader, viaBytes) {
		t.Fatal("ImportBytes decoded a different diff than Import")
	}
	// Zero-copy: decoded contents alias the raw wire image.
	for va, content := range viaBytes.Contents {
		if len(content) != mem.PageSize {
			t.Fatalf("page %#x content length %d", va, len(content))
		}
		p := &content[0]
		aliased := false
		for i := range raw {
			if &raw[i] == p {
				aliased = true
				break
			}
		}
		if !aliased {
			t.Fatalf("page %#x content does not alias the wire image (copied)", va)
		}
		break // one page suffices
	}
}

// TestZeroCopyRoundTripThroughMaterialize: wire → ImportBytes →
// Materialize → Export must reproduce identical page contents.
func TestZeroCopyRoundTripThroughMaterialize(t *testing.T) {
	snap, _ := buildTestSnapshot(t, "rt")
	var wire bytes.Buffer
	if err := snap.Export(&wire); err != nil {
		t.Fatal(err)
	}
	diff, err := ImportBytes(wire.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	st2 := mem.NewStore(0)
	rebuilt, err := Materialize(diff, st2)
	if err != nil {
		t.Fatal(err)
	}
	var rewire bytes.Buffer
	if err := rebuilt.Export(&rewire); err != nil {
		t.Fatal(err)
	}
	rediff, err := ImportBytes(rewire.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(rediff.PageVAs) != len(diff.PageVAs) {
		t.Fatalf("page count drifted: %d vs %d", len(rediff.PageVAs), len(diff.PageVAs))
	}
	for _, va := range diff.PageVAs {
		if !bytes.Equal(diff.Contents[va], rediff.Contents[va]) {
			t.Fatalf("page %#x content drifted through materialize", va)
		}
	}
}

// TestDeployKitCache exercises the snapshot-side kit parking contract.
func TestDeployKitCache(t *testing.T) {
	snap, _ := buildTestSnapshot(t, "kits")
	type kit struct{ n int }
	if got := snap.TakeDeployKit(); got != nil {
		t.Fatalf("empty cache returned %v", got)
	}
	if !snap.CacheDeployKit(&kit{1}) {
		t.Fatal("CacheDeployKit refused on live snapshot")
	}
	if snap.CachedDeployKits() != 1 {
		t.Fatalf("CachedDeployKits = %d", snap.CachedDeployKits())
	}
	k := snap.TakeDeployKit()
	if k == nil || k.(*kit).n != 1 {
		t.Fatalf("TakeDeployKit = %v", k)
	}
	for i := 0; i < maxDeployKits; i++ {
		if !snap.CacheDeployKit(&kit{i}) {
			t.Fatalf("cache refused at %d/%d", i, maxDeployKits)
		}
	}
	if snap.CacheDeployKit(&kit{99}) {
		t.Fatal("cache accepted beyond its bound")
	}
	if err := snap.Delete(); err != nil {
		t.Fatal(err)
	}
	if snap.TakeDeployKit() != nil {
		t.Fatal("deleted snapshot still held kits")
	}
	if snap.CacheDeployKit(&kit{0}) {
		t.Fatal("deleted snapshot accepted a kit")
	}
}
