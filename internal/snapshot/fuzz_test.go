package snapshot

import (
	"bytes"
	"encoding/binary"
	"testing"

	"seuss/internal/mem"
	"seuss/internal/pagetable"
)

// fuzzSeedImage builds a small but representative snapshot stack and
// returns the child diff's encoded bytes — the well-formed corpus seed
// every mutation starts from.
func fuzzSeedImage(f *testing.F) []byte {
	f.Helper()
	st := mem.NewStore(0)
	boot, err := pagetable.New(st)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		boot.Store(uint64(i)*mem.PageSize, []byte{0xB0, byte(i)})
	}
	base, err := Capture("runtime/nodejs", nil, boot, Registers{PC: 0x1000})
	if err != nil {
		f.Fatal(err)
	}
	space, _, err := base.Deploy()
	if err != nil {
		f.Fatal(err)
	}
	space.Store(2*mem.PageSize, []byte("function code"))
	space.Touch(64 * mem.PageSize) // zero page: travels as one byte
	child, err := Capture("fn/fuzz", base, space, Registers{PC: 0x2b80, SP: 0x7fff})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := child.Export(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzImport feeds arbitrary bytes to the snapshot decoder. The
// contract under fuzzing: ImportBytes never panics, never allocates
// proportionally more than its input (a hostile page count or payload
// length must be rejected before the allocation it implies), and
// returns a structurally consistent diff whenever it accepts.
func FuzzImport(f *testing.F) {
	seed := fuzzSeedImage(f)
	f.Add(seed)

	// Truncations at interesting boundaries.
	for _, n := range []int{0, 1, 4, 11, 12, len(seed) / 2, len(seed) - 5, len(seed) - 1} {
		if n >= 0 && n <= len(seed) {
			f.Add(seed[:n])
		}
	}
	// Bit flips in the header, the body, and the trailing CRC.
	for _, pos := range []int{0, 5, len(seed) / 2, len(seed) - 2} {
		flipped := append([]byte(nil), seed...)
		flipped[pos] ^= 0x80
		f.Add(flipped)
	}
	// Oversized length fields: a page count and a payload length far
	// beyond what the body holds (CRC fixed up so the length check, not
	// the checksum, is what trips).
	huge := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint32(huge[len(huge)-8:], 0xFFFFFFFF)
	f.Add(withFixedCRC(huge))
	f.Add([]byte("SEUS\x01\x00\x00\x00\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		diff, err := ImportBytes(data)
		if err != nil {
			if diff != nil {
				t.Fatalf("error %v returned a non-nil diff", err)
			}
			return
		}
		// Accepted: the diff must be internally consistent and bounded
		// by the input that produced it.
		if diff.Header.Pages != len(diff.PageVAs) {
			t.Fatalf("header pages %d != %d decoded", diff.Header.Pages, len(diff.PageVAs))
		}
		if got, max := len(diff.PageVAs), len(data)/9+1; got > max {
			t.Fatalf("decoded %d pages from %d bytes (max %d): over-allocation", got, len(data), max)
		}
		if len(diff.PayloadBytes) > len(data) {
			t.Fatalf("payload %d bytes from %d input bytes", len(diff.PayloadBytes), len(data))
		}
		for va, content := range diff.Contents {
			if len(content) != mem.PageSize {
				t.Fatalf("page %#x content is %d bytes", va, len(content))
			}
		}
		if diff.WireBytes() < 0 || diff.LogicalBytes() < 0 {
			t.Fatalf("negative size accounting: wire=%d logical=%d", diff.WireBytes(), diff.LogicalBytes())
		}
	})
}

// withFixedCRC recomputes and replaces the trailing CRC32 so mutated
// bodies pass the checksum and reach the structural checks.
func withFixedCRC(raw []byte) []byte {
	if len(raw) < 4 {
		return raw
	}
	out := append([]byte(nil), raw...)
	body := out[:len(out)-4]
	binary.LittleEndian.PutUint32(out[len(out)-4:], crcOf(body))
	return out
}

// crcOf is the codec's checksum over an encoded body.
func crcOf(body []byte) uint32 {
	w := &crcWriter{w: discardWriter{}}
	w.write(body)
	return w.crc
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
