package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"

	"seuss/internal/mem"
)

func TestWorkingSetRoundTrip(t *testing.T) {
	cases := [][]uint64{
		nil,
		{0},
		{4096},
		{0, 4096, 8192, 12288},
		{4096, 1 << 20, 1 << 30, 1 << 40},
		{mem.PageSize * 7, mem.PageSize * 8, mem.PageSize * 5000},
	}
	for _, pages := range cases {
		data, err := EncodeWorkingSet(pages)
		if err != nil {
			t.Fatalf("encode %v: %v", pages, err)
		}
		got, err := DecodeWorkingSet(data)
		if err != nil {
			t.Fatalf("decode %v: %v", pages, err)
		}
		if len(got) != len(pages) {
			t.Fatalf("round trip %v -> %v", pages, got)
		}
		for i := range pages {
			if got[i] != pages[i] {
				t.Fatalf("round trip %v -> %v", pages, got)
			}
		}
	}
}

func TestWorkingSetEncodeDeterministic(t *testing.T) {
	pages := []uint64{4096, 8192, 1 << 21, 1 << 33}
	a, err := EncodeWorkingSet(pages)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeWorkingSet(pages)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same pages encoded to different bytes")
	}
}

func TestWorkingSetEncodeRejectsBadInput(t *testing.T) {
	if _, err := EncodeWorkingSet([]uint64{4097}); err == nil {
		t.Error("unaligned page accepted")
	}
	if _, err := EncodeWorkingSet([]uint64{8192, 4096}); err == nil {
		t.Error("unsorted pages accepted")
	}
	if _, err := EncodeWorkingSet([]uint64{4096, 4096}); err == nil {
		t.Error("duplicate pages accepted")
	}
	if _, err := EncodeWorkingSet([]uint64{1 << 62}); err == nil {
		t.Error("out-of-range page accepted")
	}
}

func TestWorkingSetDecodeRejectsDamage(t *testing.T) {
	valid, err := EncodeWorkingSet([]uint64{4096, 8192, 1 << 25})
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must fail cleanly.
	for n := 0; n < len(valid); n++ {
		if _, err := DecodeWorkingSet(valid[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
	// Every single-bit flip must fail the CRC (or, for flips inside the
	// CRC field itself, the comparison).
	for i := 0; i < len(valid); i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x40
		if _, err := DecodeWorkingSet(mut); err == nil {
			t.Fatalf("bit flip at byte %d decoded", i)
		}
	}
	// A hostile count with a recomputed CRC must be rejected by the
	// body-size bound, not by an allocation.
	hostile := append([]byte(nil), valid[:len(valid)-4]...)
	binary.LittleEndian.PutUint32(hostile[6:10], 1<<31)
	hostile = binary.LittleEndian.AppendUint32(hostile, crc32.ChecksumIEEE(hostile))
	if _, err := DecodeWorkingSet(hostile); err == nil {
		t.Fatal("hostile count decoded")
	}
}

func TestMergeWorkingSets(t *testing.T) {
	cases := []struct{ a, b, want []uint64 }{
		{nil, nil, []uint64{}},
		{[]uint64{1, 3}, nil, []uint64{1, 3}},
		{nil, []uint64{2}, []uint64{2}},
		{[]uint64{1, 3, 5}, []uint64{2, 3, 6}, []uint64{1, 2, 3, 5, 6}},
		{[]uint64{1, 2}, []uint64{1, 2}, []uint64{1, 2}},
	}
	for _, c := range cases {
		got := MergeWorkingSets(c.a, c.b)
		if len(got) != len(c.want) {
			t.Errorf("merge(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("merge(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
				break
			}
		}
	}
}

// FuzzWorkingSet feeds arbitrary bytes to the sidecar decoder. The
// decoder must never panic, never allocate beyond its input's implied
// bound, and anything it accepts must re-encode to a record that
// decodes to the same page set (the canonicalization property the
// content-addressed sidecar relies on).
func FuzzWorkingSet(f *testing.F) {
	for _, pages := range [][]uint64{nil, {4096}, {4096, 8192, 1 << 30}} {
		data, err := EncodeWorkingSet(pages)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("SEWS"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		pages, err := DecodeWorkingSet(data)
		if err != nil {
			return
		}
		re, err := EncodeWorkingSet(pages)
		if err != nil {
			t.Fatalf("decoded record failed to re-encode: %v", err)
		}
		again, err := DecodeWorkingSet(re)
		if err != nil {
			t.Fatalf("re-encoded record failed to decode: %v", err)
		}
		if !reflect.DeepEqual(pages, again) {
			t.Fatalf("re-encode changed the page set: %v vs %v", pages, again)
		}
	})
}

// TestGraftWireMatchesGraft: the fused decode+install path must
// produce a snapshot indistinguishable from Import+Graft — same
// deployed contents, same re-export bytes (lazy zero pages included).
func TestGraftWireMatchesGraft(t *testing.T) {
	stA := mem.NewStore(0)
	_, childA := buildStack(t, stA)
	var wire bytes.Buffer
	if err := childA.Export(&wire); err != nil {
		t.Fatal(err)
	}

	stB := mem.NewStore(0)
	baseB, _ := buildStack(t, stB)
	diff, err := ImportBytes(wire.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	viaGraft, err := Graft(diff, baseB)
	if err != nil {
		t.Fatal(err)
	}
	viaWire, payload, err := GraftWire(wire.Bytes(), baseB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, diff.PayloadBytes) {
		t.Errorf("payload bytes differ: %d vs %d", len(payload), len(diff.PayloadBytes))
	}
	if viaWire.Name() != viaGraft.Name() || viaWire.Registers() != viaGraft.Registers() {
		t.Errorf("metadata differs: %q/%+v vs %q/%+v",
			viaWire.Name(), viaWire.Registers(), viaGraft.Name(), viaGraft.Registers())
	}

	// Same bytes at every diff page and a shared base page.
	check := make([]byte, 16)
	for _, va := range append([]uint64{3 * mem.PageSize}, diff.PageVAs...) {
		spaceA, _, err := viaGraft.Deploy()
		if err != nil {
			t.Fatal(err)
		}
		spaceB, _, err := viaWire.Deploy()
		if err != nil {
			t.Fatal(err)
		}
		a := make([]byte, len(check))
		b := make([]byte, len(check))
		spaceA.Load(va, a)
		spaceB.Load(va, b)
		spaceA.Release()
		viaGraft.ReleaseUC()
		spaceB.Release()
		viaWire.ReleaseUC()
		if !bytes.Equal(a, b) {
			t.Fatalf("page %#x differs: %v vs %v", va, a, b)
		}
	}

	// Byte-identical re-export — the tier-integrity contract.
	var reGraft, reWire bytes.Buffer
	if err := viaGraft.Export(&reGraft); err != nil {
		t.Fatal(err)
	}
	if err := viaWire.Export(&reWire); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reGraft.Bytes(), reWire.Bytes()) {
		t.Fatalf("re-exports differ: %d vs %d bytes", reGraft.Len(), reWire.Len())
	}
	if !bytes.Equal(reWire.Bytes(), wire.Bytes()) {
		t.Fatalf("GraftWire re-export differs from original wire: %d vs %d bytes",
			reWire.Len(), wire.Len())
	}
}

// TestGraftWireRejectsBadWire mirrors the two-step path's validation.
func TestGraftWireRejectsBadWire(t *testing.T) {
	stA := mem.NewStore(0)
	_, childA := buildStack(t, stA)
	var wire bytes.Buffer
	if err := childA.Export(&wire); err != nil {
		t.Fatal(err)
	}
	stB := mem.NewStore(0)
	baseB, _ := buildStack(t, stB)

	if _, _, err := GraftWire(wire.Bytes(), nil); err == nil {
		t.Error("nil base accepted")
	}
	mut := append([]byte(nil), wire.Bytes()...)
	mut[len(mut)/2] ^= 0x80
	if _, _, err := GraftWire(mut, baseB); err == nil {
		t.Error("corrupt wire accepted")
	}
	for _, n := range []int{0, 8, len(wire.Bytes()) - 5} {
		if _, _, err := GraftWire(wire.Bytes()[:n], baseB); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
	// Lineage mismatch: graft onto a base with another name.
	if _, _, err := GraftWire(wire.Bytes(), childA); err == nil {
		t.Error("wrong-lineage base accepted")
	}
	// A clean failure must not leak a half-built snapshot: the base is
	// still graftable.
	if snap, _, err := GraftWire(wire.Bytes(), baseB); err != nil {
		t.Fatalf("healthy graft after failures: %v", err)
	} else {
		snap.Delete()
	}
}

// TestPeekWireHeader: the header peek must agree with the full decode
// and share its validation.
func TestPeekWireHeader(t *testing.T) {
	stA := mem.NewStore(0)
	_, childA := buildStack(t, stA)
	var wire bytes.Buffer
	if err := childA.Export(&wire); err != nil {
		t.Fatal(err)
	}
	hdr, err := PeekWireHeader(wire.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	diff, err := ImportBytes(wire.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hdr, diff.Header) {
		t.Errorf("peeked header %+v != decoded header %+v", hdr, diff.Header)
	}
	mut := append([]byte(nil), wire.Bytes()...)
	mut[0] ^= 1
	if _, err := PeekWireHeader(mut); err == nil {
		t.Error("corrupt wire peeked successfully")
	}
}
