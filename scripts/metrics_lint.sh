#!/usr/bin/env bash
# metrics_lint.sh — boot a real seuss-node, drive a couple of
# invocations through it, scrape GET /metrics, and lint the exposition:
#
#   * every sample line parses as  name[{labels}] value
#   * every sample belongs to a family announced by a # TYPE line
#   * no family announces # TYPE twice (same-family series must be
#     written adjacently)
#   * every value parses as a float
#   * histogram families emit _bucket (with an le label and an +Inf
#     bound), _sum, and _count series
#   * the families the README promises are actually present, and the
#     invocations we sent show up in them
#
# This is the CI companion to the byte-exact golden test in
# internal/metrics: the golden test pins the renderer, this pins the
# wired-up binary end to end.
set -euo pipefail

cd "$(dirname "$0")/.."
PORT="${SEUSS_LINT_PORT:-18473}"
ADDR="127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
NODE_PID=""
cleanup() {
  [ -n "$NODE_PID" ] && kill "$NODE_PID" 2>/dev/null || true
  [ -n "$NODE_PID" ] && wait "$NODE_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "== building seuss-node" >&2
go build -o "$TMP/seuss-node" ./cmd/seuss-node

echo "== booting on $ADDR" >&2
# -policy fixed with a tick period far longer than the lint: the
# keepalive histogram gets real observations from the invocations
# below, but no reaper tick fires, so the expiration/prewarm counters
# stay deterministically zero.
"$TMP/seuss-node" -addr "$ADDR" -shards 2 -policy fixed -keepalive 10m -policy-tick 1h >"$TMP/node.log" 2>&1 &
NODE_PID=$!

for i in $(seq 1 50); do
  if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$NODE_PID" 2>/dev/null; then
    echo "FAIL: seuss-node exited during boot:" >&2
    cat "$TMP/node.log" >&2
    exit 1
  fi
  sleep 0.2
  if [ "$i" -eq 50 ]; then
    echo "FAIL: seuss-node never became healthy" >&2
    cat "$TMP/node.log" >&2
    exit 1
  fi
done

# Two invocations of one key: first is a cold start, second is a hot
# start from the cached idle UC — so both ends of the path taxonomy
# have non-zero counters in the scrape.
BODY='{"key":"lint/fn","source":"function main(a) { return {ok: true}; }"}'
for i in 1 2; do
  curl -sf -X POST "http://$ADDR/invoke" -d "$BODY" >/dev/null
done

curl -sf "http://$ADDR/metrics" >"$TMP/metrics.txt"
CT="$(curl -sf -o /dev/null -w '%{content_type}' "http://$ADDR/metrics")"
case "$CT" in
  *text/plain*) ;;
  *) echo "FAIL: /metrics Content-Type is not text/plain: $CT" >&2; exit 1 ;;
esac

echo "== linting exposition ($(wc -l < "$TMP/metrics.txt") lines)" >&2
awk '
  /^# TYPE / {
    if (NF != 4) { printf "line %d: malformed TYPE line: %s\n", NR, $0; bad = 1; next }
    if ($3 in type) { printf "line %d: duplicate TYPE for family %s\n", NR, $3; bad = 1 }
    if ($4 != "counter" && $4 != "gauge" && $4 != "histogram" && $4 != "summary" && $4 != "untyped") {
      printf "line %d: unknown metric type %s\n", NR, $4; bad = 1
    }
    type[$3] = $4
    next
  }
  /^#/ { next }     # HELP and comments
  /^$/ { next }
  {
    # name{labels} value  |  name value
    if (match($0, /^[a-zA-Z_:][a-zA-Z0-9_:]*/) == 0) {
      printf "line %d: sample does not start with a metric name: %s\n", NR, $0; bad = 1; next
    }
    name = substr($0, 1, RLENGTH)
    rest = substr($0, RLENGTH + 1)
    labels = ""
    if (substr(rest, 1, 1) == "{") {
      close_idx = index(rest, "}")
      if (close_idx == 0) { printf "line %d: unterminated label set: %s\n", NR, $0; bad = 1; next }
      labels = substr(rest, 1, close_idx)
      rest = substr(rest, close_idx + 1)
    }
    if (rest !~ /^ [^ ]+$/) {
      printf "line %d: expected single space then value: %s\n", NR, $0; bad = 1; next
    }
    value = substr(rest, 2)
    if (value !~ /^[-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|Inf|NaN)$/) {
      printf "line %d: unparseable value %s\n", NR, value; bad = 1
    }
    # Map histogram child series back to their family for TYPE coverage.
    family = name
    if (family in type) { } else {
      sub(/_(bucket|sum|count)$/, "", family)
    }
    if (!(family in type)) {
      printf "line %d: sample %s has no TYPE declaration\n", NR, name; bad = 1; next
    }
    if (type[family] == "histogram") {
      if (name ~ /_bucket$/) {
        if (labels !~ /le="/) { printf "line %d: histogram bucket without le label: %s\n", NR, $0; bad = 1 }
        if (labels ~ /le="\+Inf"/) inf_seen[family] = 1
        seen_bucket[family] = 1
      } else if (name ~ /_sum$/) { seen_sum[family] = 1 }
      else if (name ~ /_count$/) { seen_count[family] = 1 }
      else { printf "line %d: histogram family %s has non-histogram sample %s\n", NR, family, name; bad = 1 }
    }
  }
  END {
    for (f in type) {
      if (type[f] != "histogram") continue
      if (!(f in seen_bucket)) { printf "histogram %s: no _bucket series\n", f; bad = 1 }
      if (!(f in inf_seen))    { printf "histogram %s: no le=\"+Inf\" bucket\n", f; bad = 1 }
      if (!(f in seen_sum))    { printf "histogram %s: no _sum\n", f; bad = 1 }
      if (!(f in seen_count))  { printf "histogram %s: no _count\n", f; bad = 1 }
    }
    exit bad
  }
' "$TMP/metrics.txt"

# The families the README and DESIGN.md §9 promise, with the values the
# two invocations above must have produced.
require() {
  if ! grep -q "$1" "$TMP/metrics.txt"; then
    echo "FAIL: /metrics is missing: $1" >&2
    exit 1
  fi
}
require '^seuss_invocations_total{path="cold"} 1$'
require '^seuss_invocations_total{path="hot"} 1$'
require '^seuss_invocation_latency_seconds_bucket{path="cold",le="+Inf"} 1$'
require '^seuss_invocation_latency_seconds_count{path="cold"} 1$'
require '^seuss_snapshot_stack_lookups_total{result='
require '^seuss_snapshot_tier_lookups_total{result='
require '^seuss_snapshot_tier_promotions_total{kind='
require '^seuss_invocations_total{path="lukewarm"} 0$'
require '^seuss_deploy_kit_lookups_total{result='
require '^seuss_ucs_deployed_total '
require '^seuss_trace_dropped_total 0$'
# Scheduler and snapshot-fabric families (DESIGN.md §11). seuss-node
# runs a single pool, not a cluster, so these counters are zero here —
# the lint pins that the families are registered and rendered.
require '^seuss_sched_placements_total{action="cold"} 0$'
require '^seuss_sched_placements_total{action="route"} 0$'
require '^seuss_sched_placements_total{action="fetch"} 0$'
require '^seuss_sched_placements_total{action="migrate"} 0$'
require '^seuss_sched_stale_entries_total 0$'
require '^seuss_fabric_gossip_rounds_total 0$'
require '^seuss_fabric_gossip_drops_total 0$'
require '^seuss_fabric_layer_transfers_total{outcome="fetched"} 0$'
require '^seuss_fabric_layer_transfers_total{outcome="deduped"} 0$'
require '^seuss_fabric_layer_transfers_total{outcome="rejected"} 0$'
# Member-lifecycle families (DESIGN.md §12) — zero for the same reason.
require '^seuss_cluster_member_state_transitions_total{state="alive"} 0$'
require '^seuss_cluster_member_state_transitions_total{state="suspect"} 0$'
require '^seuss_cluster_member_state_transitions_total{state="dead"} 0$'
require '^seuss_cluster_failovers_total 0$'
require '^seuss_fabric_repairs_total{outcome="promoted"} 0$'
require '^seuss_fabric_repairs_total{outcome="refetched"} 0$'
require '^seuss_fabric_repairs_total{outcome="cold"} 0$'
require '^seuss_fabric_repairs_total{outcome="failed"} 0$'
# Working-set record/replay families (DESIGN.md §13) — the lint boots
# without -snapdir, so no lukewarm restore ever runs and the counters
# stay zero; the requirement is that the families render.
require '^seuss_ws_records_total{outcome="recorded"} 0$'
require '^seuss_ws_records_total{outcome="merged"} 0$'
require '^seuss_ws_records_total{outcome="corrupt"} 0$'
require '^seuss_ws_prefetched_pages_total 0$'
require '^seuss_ws_coverage_pages_total{result="hit"} 0$'
require '^seuss_ws_coverage_pages_total{result="miss"} 0$'
# Restore-time uniqueness (DESIGN.md §14): one boot reseed per template
# runtime boot, one cold reseed for the cold invocation above; the hot
# invocation deploys nothing, so the remaining paths stay zero.
require '^seuss_uc_reseeds_total{path="boot"} [1-9]'
require '^seuss_uc_reseeds_total{path="cold"} 1$'
require '^seuss_uc_reseeds_total{path="warm"} 0$'
require '^seuss_uc_reseeds_total{path="lukewarm"} 0$'
require '^seuss_uc_reseeds_total{path="kit"} 0$'
# Lifecycle-policy families (DESIGN.md §15): the boot above arms
# -policy fixed -keepalive 10m, so both invocations observe a 600 s
# window; the reaper period outlives the lint, so nothing expires or
# prewarms.
require '^seuss_policy_expirations_total 0$'
require '^seuss_policy_prewarms_total{outcome="promoted"} 0$'
require '^seuss_policy_prewarms_total{outcome="miss"} 0$'
require '^seuss_policy_prewarms_total{outcome="misfire"} 0$'
require '^seuss_policy_keepalive_seconds_bucket{le="600"} 2$'
require '^seuss_policy_keepalive_seconds_count 2$'

echo "OK: /metrics exposition is well-formed" >&2
