#!/usr/bin/env bash
# restart_smoke.sh — end-to-end restart-recovery smoke test for the
# snapshot disk tier, against the real binary:
#
#   1. boot seuss-node with -snapdir, invoke a function (cold, then hot)
#   2. SIGTERM: the graceful drain must flush the function snapshot
#      stacks to the tier directory
#   3. boot a second seuss-node over the same -snapdir: boot-time
#      prewarm must restore the lineages
#   4. the first re-invocation must be served from RAM (warm/hot, never
#      cold), and /metrics must show the prewarm promotions and a
#      lukewarm latency family
#
# This is the CI proof that "restart without losing your warm starts"
# survives the full stack — flags, store recovery, pool prewarm — not
# just the unit tests.
set -euo pipefail

cd "$(dirname "$0")/.."
PORT="${SEUSS_SMOKE_PORT:-18573}"
ADDR="127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
SNAPDIR="$TMP/snaps"
NODE_PID=""
cleanup() {
  [ -n "$NODE_PID" ] && kill "$NODE_PID" 2>/dev/null || true
  [ -n "$NODE_PID" ] && wait "$NODE_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

wait_healthy() {
  for i in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$NODE_PID" 2>/dev/null; then
      echo "FAIL: seuss-node exited during boot:" >&2
      cat "$1" >&2
      exit 1
    fi
    sleep 0.2
  done
  echo "FAIL: seuss-node never became healthy" >&2
  cat "$1" >&2
  exit 1
}

echo "== building seuss-node" >&2
go build -o "$TMP/seuss-node" ./cmd/seuss-node

# invoke POSTs $BODY once, records the response's request_id (restore-
# time uniqueness: ids must never repeat, even across process restarts
# sharing one -snapdir), and prints the serving path.
IDS="$TMP/request_ids.txt"
invoke() {
  local resp
  resp="$(curl -sf -X POST "http://$ADDR/invoke" -d "$BODY")"
  printf '%s\n' "$resp" | sed -n 's/.*"request_id":\([0-9][0-9]*\).*/\1/p' >>"$IDS"
  printf '%s\n' "$resp" | sed -n 's/.*"path":"\([a-z]*\)".*/\1/p'
}

echo "== first boot with -snapdir $SNAPDIR" >&2
"$TMP/seuss-node" -addr "$ADDR" -shards 2 -snapdir "$SNAPDIR" >"$TMP/node1.log" 2>&1 &
NODE_PID=$!
wait_healthy "$TMP/node1.log"

BODY='{"key":"smoke/fn","source":"function main(a) { return {ok: true}; }"}'
PATH1="$(invoke)"
if [ "$PATH1" != "cold" ]; then
  echo "FAIL: first-ever invocation path is '$PATH1', want cold" >&2
  exit 1
fi
invoke >/dev/null

echo "== SIGTERM: graceful drain must flush the tier" >&2
kill -TERM "$NODE_PID"
wait "$NODE_PID" 2>/dev/null || true
NODE_PID=""
if ! grep -q "flushed .* function snapshots" "$TMP/node1.log"; then
  echo "FAIL: drain log never reported a snapshot flush:" >&2
  cat "$TMP/node1.log" >&2
  exit 1
fi
if ! ls "$SNAPDIR"/*.snap >/dev/null 2>&1 || [ ! -f "$SNAPDIR/manifest.json" ]; then
  echo "FAIL: tier directory is missing entries after drain:" >&2
  ls -la "$SNAPDIR" >&2 || true
  exit 1
fi

echo "== second boot over the same -snapdir" >&2
"$TMP/seuss-node" -addr "$ADDR" -shards 2 -snapdir "$SNAPDIR" >"$TMP/node2.log" 2>&1 &
NODE_PID=$!
wait_healthy "$TMP/node2.log"
if ! grep -q "prewarmed .* function snapshot stacks" "$TMP/node2.log"; then
  echo "FAIL: second boot never prewarmed:" >&2
  cat "$TMP/node2.log" >&2
  exit 1
fi

PATH2="$(invoke)"
case "$PATH2" in
  warm|hot) ;;
  *)
    echo "FAIL: first post-restart invocation path is '$PATH2', want warm or hot" >&2
    cat "$TMP/node2.log" >&2
    exit 1
    ;;
esac

curl -sf "http://$ADDR/metrics" >"$TMP/metrics.txt"
require() {
  if ! grep -q "$1" "$TMP/metrics.txt"; then
    echo "FAIL: /metrics is missing: $1" >&2
    exit 1
  fi
}
require '^seuss_snapshot_tier_promotions_total{kind="prewarm"} [1-9]'
require '^seuss_snapshot_tier_lookups_total{result="hit"} [1-9]'
require '^seuss_invocations_total{path="lukewarm"} '
require '^seuss_invocation_latency_seconds_count{path="lukewarm"} '

STATS="$(curl -sf "http://$ADDR/stats")"
case "$STATS" in
  *'"snapshot_tier"'*) ;;
  *)
    echo "FAIL: /stats has no snapshot_tier section: $STATS" >&2
    exit 1
    ;;
esac

echo "== SIGTERM again: drain before the working-set boots" >&2
kill -TERM "$NODE_PID"
wait "$NODE_PID" 2>/dev/null || true
NODE_PID=""

echo "== third boot with -no-prewarm: lukewarm restore records the working set" >&2
"$TMP/seuss-node" -addr "$ADDR" -shards 2 -snapdir "$SNAPDIR" -no-prewarm >"$TMP/node3.log" 2>&1 &
NODE_PID=$!
wait_healthy "$TMP/node3.log"
PATH3="$(invoke)"
if [ "$PATH3" != "lukewarm" ]; then
  echo "FAIL: first no-prewarm invocation path is '$PATH3', want lukewarm" >&2
  cat "$TMP/node3.log" >&2
  exit 1
fi
curl -sf "http://$ADDR/metrics" >"$TMP/metrics.txt"
require '^seuss_ws_records_total{outcome="recorded"} [1-9]'
if ! ls "$SNAPDIR"/*.ws >/dev/null 2>&1; then
  echo "FAIL: lukewarm restore left no working-set sidecar in the tier:" >&2
  ls -la "$SNAPDIR" >&2 || true
  exit 1
fi
kill -TERM "$NODE_PID"
wait "$NODE_PID" 2>/dev/null || true
NODE_PID=""

echo "== fourth boot with -no-prewarm: the record survives restart and prefetches" >&2
"$TMP/seuss-node" -addr "$ADDR" -shards 2 -snapdir "$SNAPDIR" -no-prewarm >"$TMP/node4.log" 2>&1 &
NODE_PID=$!
wait_healthy "$TMP/node4.log"
PATH4="$(invoke)"
if [ "$PATH4" != "lukewarm" ]; then
  echo "FAIL: first post-restart invocation path is '$PATH4', want lukewarm" >&2
  cat "$TMP/node4.log" >&2
  exit 1
fi
curl -sf "http://$ADDR/metrics" >"$TMP/metrics.txt"
require '^seuss_ws_prefetched_pages_total [1-9]'
require '^seuss_ws_coverage_pages_total{result="hit"} [1-9]'

echo "== request-id uniqueness across all four boots" >&2
IDCOUNT="$(wc -l < "$IDS")"
if [ "$IDCOUNT" -lt 5 ]; then
  echo "FAIL: captured only $IDCOUNT request ids, want 5" >&2
  cat "$IDS" >&2
  exit 1
fi
DUPES="$(sort -n "$IDS" | uniq -d)"
if [ -n "$DUPES" ]; then
  echo "FAIL: request ids reused across process restarts:" >&2
  echo "$DUPES" >&2
  exit 1
fi

echo "OK: restart recovered warm starts from the snapshot tier" >&2
