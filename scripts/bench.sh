#!/usr/bin/env bash
# bench.sh — run the hot-path benchmarks and compare them to the
# committed baseline (BENCH_hotpath.json).
#
#   scripts/bench.sh record   re-run the benchmarks and rewrite the
#                             baseline's "benchmarks" table
#   scripts/bench.sh gate     re-run the benchmarks and FAIL if any
#                             benchmark regressed >30% in ns/op, if a
#                             zero-alloc benchmark allocates at all, or
#                             if a non-zero-alloc benchmark grew >30%
#                             in allocs/op
#
# The gate covers the wall-clock hot path: deploy, snapshot capture,
# page-fault resolution, and end-to-end sharded throughput (the
# shards=1 sub-benchmark, so shard-count changes don't move the
# goalposts). Keeping it in CI is what makes "allocation-free" a
# property instead of a one-time measurement. The snapshot-tier pair
# (lukewarm restore vs the cold rebuild it replaces) rides along so a
# regression cannot silently erase the lukewarm win, and the baseline's
# "ratios" table pins cross-benchmark contracts — the prefetched
# lukewarm restore must stay within a fixed multiple of the warm
# deploy, however both drift in absolute ns.
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-gate}"
BASELINE="${2:-BENCH_hotpath.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== running hot-path benchmarks (this takes ~15s)" >&2
go test -run '^$' -count=1 \
  -bench 'BenchmarkUCDeployRealTime$|BenchmarkSnapshotCaptureRealTime$|BenchmarkPageFaultRealTime$|BenchmarkLukewarmDeploy$|BenchmarkLukewarmPrefetched$|BenchmarkColdRebuildRealTime$' \
  -benchmem . | tee -a "$RAW" >&2
go test -run '^$' -count=1 \
  -bench 'BenchmarkShardedThroughput/shards=1$' \
  -benchmem ./internal/shardpool | tee -a "$RAW" >&2

# Lifecycle-policy smoke (DESIGN.md §15): the reduced-scale trace run
# asserting Hybrid's warm-hit rate is at least FixedKeepAlive's while
# holding less resident RAM, and its p99 beats scale-to-zero. Not a
# timing gate — the inequalities are virtual-time properties, so this
# passes or fails identically on any machine.
echo "== running lifecycle-policy smoke (~10s)" >&2
go test -run 'TestPolicyTradeoffs$' -count=1 ./internal/experiments >&2

python3 - "$MODE" "$BASELINE" "$RAW" <<'PY'
import json, re, sys

mode, baseline_path, raw_path = sys.argv[1], sys.argv[2], sys.argv[3]

# "BenchmarkFoo/sub=1-8  1234  567 ns/op  [custom metrics]  8 B/op  9 allocs/op"
line = re.compile(
    r'^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op.*?([\d.]+) B/op\s+(\d+) allocs/op')
current = {}
for l in open(raw_path):
    m = line.match(l)
    if m:
        current[m.group(1)] = {
            "ns_per_op": float(m.group(2)),
            "allocs_per_op": int(m.group(4)),
        }

if not current:
    sys.exit("bench.sh: no benchmark results parsed — did the build fail?")

if mode == "record":
    try:
        doc = json.load(open(baseline_path))
    except FileNotFoundError:
        doc = {}
    doc["benchmarks"] = current
    with open(baseline_path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"recorded {len(current)} benchmarks to {baseline_path}")
    sys.exit(0)

doc = json.load(open(baseline_path))
base = doc["benchmarks"]
failures = []
for name, b in sorted(base.items()):
    c = current.get(name)
    if c is None:
        failures.append(f"{name}: benchmark missing from current run")
        continue
    limit = b["ns_per_op"] * 1.30
    verdict = "ok"
    if c["ns_per_op"] > limit:
        failures.append(
            f"{name}: {c['ns_per_op']:.0f} ns/op exceeds 130% of "
            f"baseline {b['ns_per_op']:.0f} ns/op")
        verdict = "FAIL time"
    if b["allocs_per_op"] == 0:
        if c["allocs_per_op"] > 0:
            failures.append(
                f"{name}: {c['allocs_per_op']} allocs/op on a "
                f"zero-alloc benchmark")
            verdict = "FAIL allocs"
    elif c["allocs_per_op"] > b["allocs_per_op"] * 1.30:
        failures.append(
            f"{name}: {c['allocs_per_op']} allocs/op exceeds 130% of "
            f"baseline {b['allocs_per_op']}")
        verdict = "FAIL allocs"
    print(f"  {name}: {c['ns_per_op']:.0f} ns/op (base {b['ns_per_op']:.0f}), "
          f"{c['allocs_per_op']} allocs/op (base {b['allocs_per_op']}) [{verdict}]")

# Cross-benchmark ratio contracts: each entry pins one benchmark to a
# maximum multiple of another, so the relationship survives machine
# drift that moves both absolute numbers together.
for name, spec in sorted(doc.get("ratios", {}).items()):
    c, ref = current.get(name), current.get(spec["vs"])
    if c is None or ref is None:
        failures.append(f"ratio {name}: benchmark missing from current run")
        continue
    ratio = c["ns_per_op"] / ref["ns_per_op"]
    verdict = "ok" if ratio <= spec["max_ratio"] else "FAIL ratio"
    if verdict != "ok":
        failures.append(
            f"{name}: {ratio:.2f}x {spec['vs']} exceeds the "
            f"{spec['max_ratio']}x contract")
    print(f"  {name} / {spec['vs']}: {ratio:.2f}x "
          f"(max {spec['max_ratio']}x) [{verdict}]")

if failures:
    print("\nbench gate FAILED:")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print("\nbench gate passed")
PY
