package seuss

import (
	"strings"
	"testing"
	"time"

	"seuss/internal/core"
	"seuss/internal/faas"
	"seuss/internal/sim"
	"seuss/internal/workload"
)

// Cross-module invariants exercised through the whole stack: platform →
// shim → node → UC → interpreter → page tables → frames.

func TestIntegrationStatsConservation(t *testing.T) {
	eng := sim.NewEngine()
	node, err := core.NewNode(eng, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cluster := faas.NewCluster(eng, faas.NewSeussBackend(node))
	fns := make([]workload.Spec, 8)
	for i := range fns {
		fns[i] = workload.NOPSpec(i)
	}
	trial := workload.Trial{N: 200, Fns: fns, C: 8, Seed: 3}
	res := trial.Run(eng, cluster)

	if res.Completed+res.Errors != 200 {
		t.Errorf("completed %d + errors %d != 200", res.Completed, res.Errors)
	}
	st := node.Stats()
	// Every platform request was served by exactly one node path.
	if st.Cold+st.Warm+st.Hot != int64(res.Completed) {
		t.Errorf("paths %d+%d+%d != completions %d", st.Cold, st.Warm, st.Hot, res.Completed)
	}
	// Every unique function went cold exactly once (no evictions at
	// this scale).
	if st.Cold != 8 || st.SnapshotsCaptured != 8 {
		t.Errorf("cold=%d captured=%d, want 8", st.Cold, st.SnapshotsCaptured)
	}
	// Bus accounting: one activation per request, topic drained.
	topic := cluster.Bus().Topic("invoker0")
	if topic.Published() != 200 || topic.Depth() != 0 {
		t.Errorf("bus: %v", topic)
	}
}

func TestIntegrationMemoryBounded(t *testing.T) {
	eng := sim.NewEngine()
	cfg := core.DefaultConfig()
	cfg.MemoryBytes = 256 << 20
	node, err := core.NewNode(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster := faas.NewCluster(eng, faas.NewSeussBackend(node))
	// 120 unique functions on a memory-tight node: evictions and
	// reclaims must keep the node inside budget with zero failures.
	fns := make([]workload.Spec, 120)
	for i := range fns {
		fns[i] = workload.NOPSpec(i)
	}
	res := workload.Trial{N: 300, Fns: fns, C: 8, Seed: 5}.Run(eng, cluster)
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
	ms := node.MemStats()
	if ms.BytesInUse > cfg.MemoryBytes {
		t.Errorf("memory %d exceeds budget %d", ms.BytesInUse, cfg.MemoryBytes)
	}
	if node.Stats().SnapshotsEvicted == 0 && node.Stats().UCsReclaimed == 0 {
		t.Error("no reclaim activity on a tight node")
	}
}

func TestIntegrationDeterministicMacroRun(t *testing.T) {
	run := func() (float64, int64) {
		eng := sim.NewEngine()
		node, err := core.NewNode(eng, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cluster := faas.NewCluster(eng, faas.NewSeussBackend(node))
		fns := make([]workload.Spec, 16)
		for i := range fns {
			fns[i] = workload.NOPSpec(i)
		}
		res := workload.Trial{N: 300, Fns: fns, C: 16, Seed: 11}.Run(eng, cluster)
		return res.Throughput(), node.Stats().Cold
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 || c1 != c2 {
		t.Errorf("macro run nondeterministic: %.3f/%d vs %.3f/%d", t1, c1, t2, c2)
	}
}

func TestIntegrationGuestStateIsolationAtPlatformLevel(t *testing.T) {
	// Two tenants deploy byte-identical stateful code under different
	// keys; the platform must never leak state across them even while
	// caches churn.
	eng := sim.NewEngine()
	node, err := core.NewNode(eng, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := `var secrets = []; function main(args) { if (args.put) { secrets.push(args.put); } return {count: secrets.length}; }`

	var aliceOut, bobOut string
	eng.Go("flow", func(p *sim.Proc) {
		if _, err := node.Invoke(p, core.Request{Key: "alice/db", Source: src, Args: `{"put": "alice-secret"}`}); err != nil {
			t.Error(err)
			return
		}
		res, err := node.Invoke(p, core.Request{Key: "bob/db", Source: src, Args: `{}`})
		if err != nil {
			t.Error(err)
			return
		}
		bobOut = res.Output
		res, err = node.Invoke(p, core.Request{Key: "alice/db", Source: src, Args: `{}`})
		if err != nil {
			t.Error(err)
			return
		}
		aliceOut = res.Output
	})
	eng.Run()
	if !strings.Contains(bobOut, `"count":0`) {
		t.Errorf("bob sees alice's writes: %q", bobOut)
	}
	if !strings.Contains(aliceOut, `"count":1`) {
		t.Errorf("alice lost her own state: %q", aliceOut)
	}
}

func TestIntegrationVirtualTimeNeverRegresses(t *testing.T) {
	s := New()
	node, err := s.NewNode(NodeDefaults())
	if err != nil {
		t.Fatal(err)
	}
	var last time.Duration
	for i := 0; i < 5; i++ {
		if _, err := node.InvokeSync("t/fn", NOPSource, `{}`); err != nil {
			t.Fatal(err)
		}
		now := s.Clock()
		if now < last {
			t.Fatalf("clock regressed: %v < %v", now, last)
		}
		last = now
	}
}
