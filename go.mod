module seuss

go 1.22
