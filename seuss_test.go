package seuss

import (
	"strings"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	s := New()
	node, err := s.NewNode(NodeDefaults())
	if err != nil {
		t.Fatal(err)
	}
	inv, err := node.InvokeSync("t/hello",
		`function main(args) { return {msg: "hi " + args.who}; }`,
		`{"who": "tester"}`)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Path != "cold" {
		t.Errorf("path = %q", inv.Path)
	}
	if !strings.Contains(inv.Output, `"msg":"hi tester"`) {
		t.Errorf("output = %q", inv.Output)
	}
	if inv.Latency < 4*time.Millisecond || inv.Latency > 12*time.Millisecond {
		t.Errorf("cold latency = %v", inv.Latency)
	}

	inv2, err := node.InvokeSync("t/hello", ``, `{"who": "again"}`)
	if err != nil {
		t.Fatal(err)
	}
	if inv2.Path != "hot" {
		t.Errorf("second path = %q", inv2.Path)
	}
	st := node.Stats()
	if st.Cold != 1 || st.Hot != 1 || st.CachedSnapshots != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSimulationClockAdvances(t *testing.T) {
	s := New()
	if s.Clock() != 0 {
		t.Error("clock not at zero")
	}
	s.Spawn("sleeper", func(task *Task) { task.Sleep(5 * time.Second) })
	s.Run()
	if s.Clock() != 5*time.Second {
		t.Errorf("clock = %v", s.Clock())
	}
	s.RunFor(3 * time.Second)
	if s.Clock() != 8*time.Second {
		t.Errorf("clock = %v", s.Clock())
	}
}

func TestTaskNow(t *testing.T) {
	s := New()
	var at time.Duration
	s.Spawn("w", func(task *Task) {
		task.Sleep(time.Second)
		at = task.Now()
	})
	s.Run()
	if at != time.Second {
		t.Errorf("Now = %v", at)
	}
}

func TestFunctionHelpers(t *testing.T) {
	n := NOP(7)
	if n.Key != "user00007/nop" || n.Source != NOPSource {
		t.Errorf("NOP = %+v", n)
	}
	c := CPUBound("k/cpu", 150)
	if c.CPU != 150*time.Millisecond {
		t.Errorf("CPUBound = %+v", c)
	}
	i := IOBound("k/io", "http://x", 250*time.Millisecond)
	if i.IO != 250*time.Millisecond {
		t.Errorf("IOBound = %+v", i)
	}
}

func TestSeussClusterTrial(t *testing.T) {
	s := New()
	c, err := s.NewSeussCluster(NodeDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if c.Backend() != "seuss" {
		t.Errorf("backend = %q", c.Backend())
	}
	fns := []Function{NOP(0), NOP(1)}
	res := c.RunTrial(Trial{N: 100, Fns: fns, C: 8, Seed: 1})
	if res.Completed != 100 || res.Errors != 0 {
		t.Errorf("completed=%d errors=%d", res.Completed, res.Errors)
	}
	if res.Throughput() <= 0 {
		t.Error("no throughput")
	}
	sum := Summarize(res.Latencies)
	if sum.Count != 100 || sum.P50 <= 0 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestLinuxClusterTrial(t *testing.T) {
	s := New()
	c := s.NewLinuxCluster(LinuxConfig{Seed: 1})
	if c.Backend() != "linux" {
		t.Errorf("backend = %q", c.Backend())
	}
	res := c.RunTrial(Trial{N: 60, Fns: []Function{NOP(0)}, C: 8, Seed: 1})
	if res.Completed != 60 || res.Errors != 0 {
		t.Errorf("completed=%d errors=%d", res.Completed, res.Errors)
	}
}

func TestClusterBurstSmoke(t *testing.T) {
	s := New()
	cfg := NodeDefaults()
	cfg.HTTPHandler = func(url string) (string, time.Duration, error) {
		return "OK", 50 * time.Millisecond, nil
	}
	c, err := s.NewSeussCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl := c.RunBurst(Burst{
		Threads:    8,
		BGFns:      []Function{IOBound("bg/io", "http://ext", 0)},
		BGRate:     10,
		BurstEvery: 2 * time.Second,
		BurstSize:  8,
		BurstCPUms: 20,
		Bursts:     2,
		Seed:       1,
	})
	if tl.Count("burst") != 16 {
		t.Errorf("burst count = %d", tl.Count("burst"))
	}
	if tl.Errors("") != 0 {
		t.Errorf("errors = %d", tl.Errors(""))
	}
}

func TestInvokeErrorSurfaces(t *testing.T) {
	s := New()
	node, err := s.NewNode(NodeDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.InvokeSync("bad/syntax", `function main( {`, `{}`); err == nil {
		t.Error("syntax error not surfaced")
	}
}

func TestNoAOConfig(t *testing.T) {
	s := New()
	cfg := NodeDefaults()
	cfg.DisableAO = true
	node, err := s.NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := node.InvokeSync("t/nop", NOPSource, `{}`)
	if err != nil {
		t.Fatal(err)
	}
	// No-AO cold starts are dramatically slower (paper: 42 ms).
	if inv.Latency < 30*time.Millisecond {
		t.Errorf("no-AO cold = %v", inv.Latency)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (time.Duration, string) {
		s := New()
		node, err := s.NewNode(NodeDefaults())
		if err != nil {
			t.Fatal(err)
		}
		inv, err := node.InvokeSync("d/fn", `function main(a) { return {v: 1 + 2}; }`, `{}`)
		if err != nil {
			t.Fatal(err)
		}
		return inv.Latency, inv.Output
	}
	l1, o1 := run()
	l2, o2 := run()
	if l1 != l2 || o1 != o2 {
		t.Errorf("nondeterministic: %v/%q vs %v/%q", l1, o1, l2, o2)
	}
}

func TestAsyncThroughFacade(t *testing.T) {
	s := New()
	c, err := s.NewSeussCluster(NodeDefaults())
	if err != nil {
		t.Fatal(err)
	}
	var ok bool
	s.Spawn("client", func(task *Task) {
		id := c.InvokeAsync(task, NOP(0), `{}`)
		ok = c.WaitActivation(task, id)
	})
	s.Run()
	if !ok {
		t.Error("async activation failed")
	}
}

func TestFacadeAccessorsAndDistCluster(t *testing.T) {
	s := New()
	if s.Engine() == nil {
		t.Error("Engine accessor")
	}
	node, err := s.NewNode(NodeDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if node.Core() == nil {
		t.Error("Core accessor")
	}
	tr := NewTrace(10)
	if tr == nil || tr.Len() != 0 {
		t.Error("NewTrace")
	}

	dc, err := s.NewDistCluster(DistConfig{Nodes: 2, Policy: PolicyMigrate})
	if err != nil {
		t.Fatal(err)
	}
	if dc.Nodes() != 2 {
		t.Errorf("nodes = %d", dc.Nodes())
	}
	inv, servedBy, err := dc.InvokeSync("dist/fn", NOPSource, `{}`)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Path != "cold" || servedBy < 0 {
		t.Errorf("first = %s on node %d", inv.Path, servedBy)
	}
	inv2, _, err := dc.InvokeSync("dist/fn", NOPSource, `{}`)
	if err != nil {
		t.Fatal(err)
	}
	if inv2.Path == "cold" {
		t.Error("second invocation went cold again")
	}
	if dc.Stats().ClusterColds != 1 {
		t.Errorf("cluster colds = %d", dc.Stats().ClusterColds)
	}
	if len(dc.Holders("dist/fn")) == 0 {
		t.Error("directory empty")
	}
	// Task-level Invoke through the platform cluster.
	c, err := s.NewSeussCluster(NodeDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if c.Platform() == nil {
		t.Error("Platform accessor")
	}
	var invErr error
	s.Spawn("client", func(task *Task) {
		invErr = c.Invoke(task, NOP(1), `{}`)
	})
	s.Run()
	if invErr != nil {
		t.Error(invErr)
	}
}

func TestNodeInvokeRuntimeUnknown(t *testing.T) {
	s := New()
	node, err := s.NewNode(NodeDefaults())
	if err != nil {
		t.Fatal(err)
	}
	var rtErr error
	s.Spawn("client", func(task *Task) {
		_, rtErr = node.InvokeRuntime(task, "erlang", "x/fn", NOPSource, `{}`)
	})
	s.Run()
	if rtErr == nil {
		t.Error("unknown runtime accepted through facade")
	}
}

func TestNodePoolFacade(t *testing.T) {
	pool, err := NewNodePool(PoolConfig{Shards: 2, Node: NodeDefaults()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Shards() != 2 {
		t.Fatalf("shards = %d", pool.Shards())
	}
	inv, err := pool.InvokeSync("p/hello",
		`function main(args) { return {msg: "hi " + args.who}; }`,
		`{"who": "pool"}`)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Path != "cold" {
		t.Errorf("path = %q", inv.Path)
	}
	if !strings.Contains(inv.Output, `"msg":"hi pool"`) {
		t.Errorf("output = %q", inv.Output)
	}
	inv2, err := pool.InvokeSync("p/hello",
		`function main(args) { return {msg: "hi " + args.who}; }`,
		`{"who": "pool"}`)
	if err != nil {
		t.Fatal(err)
	}
	if inv2.Path != "hot" || inv2.Shard != inv.Shard {
		t.Errorf("second invocation: path = %q, shard %d -> %d", inv2.Path, inv.Shard, inv2.Shard)
	}
	st, err := pool.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cold != 1 || st.Hot != 1 {
		t.Errorf("stats cold=%d hot=%d", st.Cold, st.Hot)
	}
	if len(st.Shards) != 2 {
		t.Errorf("per-shard breakdown has %d entries", len(st.Shards))
	}
}

func TestSeussPoolClusterFacade(t *testing.T) {
	s := New()
	pool, err := NewNodePool(PoolConfig{Shards: 2, Node: NodeDefaults()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	c := s.NewSeussPoolCluster(pool)
	if c.Backend() != "seuss-pool" {
		t.Errorf("backend = %q", c.Backend())
	}
	var invErr error
	s.Spawn("client", func(task *Task) {
		invErr = c.Invoke(task, NOP(1), `{}`)
	})
	s.Run()
	if invErr != nil {
		t.Error(invErr)
	}
}

func TestPoolFacadeRobustnessSurface(t *testing.T) {
	pool, err := NewNodePool(PoolConfig{
		Shards:    2,
		Node:      NodeDefaults(),
		FaultSeed: 1,
		FaultRate: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for i := 0; i < 30; i++ {
		if _, err := pool.InvokeSync("acct/fn", NOPSource, "{}"); err != nil {
			// Injected faults surface as errors here (no retry layer in
			// the bare pool); they must at least be accounted for below.
			continue
		}
	}
	st, err := pool.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Breakers) != 2 {
		t.Fatalf("breaker states = %v, want one per shard", st.Breakers)
	}
	for i, b := range st.Breakers {
		if b == "" {
			t.Errorf("shard %d breaker state empty", i)
		}
	}
	if st.Robustness.FaultsInjected == 0 {
		t.Error("rate 0.2 over 30 invocations injected nothing")
	}
	if st.Robustness.Zero() {
		t.Error("robustness ledger empty under injection")
	}
	if !strings.Contains(st.Robustness.String(), "faults_injected") {
		t.Errorf("ledger = %q", st.Robustness.String())
	}
}
