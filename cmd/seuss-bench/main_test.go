package main

import (
	"testing"

	"seuss"
)

func TestBuildClusterBackends(t *testing.T) {
	for _, backend := range []string{"seuss", "linux"} {
		sim := seuss.New()
		c, err := buildCluster(sim, backend)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if c.Backend() != backend {
			t.Errorf("backend = %q, want %q", c.Backend(), backend)
		}
	}
	if _, err := buildCluster(seuss.New(), "nope"); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestTinyTrialThroughBenchWiring(t *testing.T) {
	sim := seuss.New()
	c, err := buildCluster(sim, "seuss")
	if err != nil {
		t.Fatal(err)
	}
	fns := []seuss.Function{seuss.NOP(0), seuss.NOP(1)}
	res := c.RunTrial(seuss.Trial{N: 40, Fns: fns, C: 4, Seed: 1})
	if res.Completed != 40 || res.Errors != 0 {
		t.Errorf("completed=%d errors=%d", res.Completed, res.Errors)
	}
}

func TestTinyBurstThroughBenchWiring(t *testing.T) {
	sim := seuss.New()
	c, err := buildCluster(sim, "linux")
	if err != nil {
		t.Fatal(err)
	}
	bg := []seuss.Function{seuss.IOBound("bg/io", "http://ext", 50_000_000)}
	tl := c.RunBurst(seuss.Burst{
		Threads: 4, BGFns: bg, BGRate: 10,
		BurstEvery: 2_000_000_000, BurstSize: 4, BurstCPUms: 20, Bursts: 2, Seed: 1,
	})
	if tl.Count("burst") != 8 {
		t.Errorf("burst count = %d", tl.Count("burst"))
	}
}
