// Command seuss-bench is the paper's custom FaaS load-generation
// benchmark (§7): trials of N invocations over M functions issued by C
// worker threads, plus the burst-resiliency mode.
//
//	seuss-bench -mode trial -backend seuss -n 2000 -m 1024 -c 32
//	seuss-bench -mode burst -backend linux -period 16s
//
// All latencies are virtual time from the deterministic simulation;
// throughput and percentile output match the quantities the paper's
// figures report.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"seuss"
)

func main() {
	mode := flag.String("mode", "trial", "trial or burst")
	backend := flag.String("backend", "seuss", "seuss or linux")
	n := flag.Int("n", 2000, "trial: invocation count (N)")
	m := flag.Int("m", 64, "trial: function set size (M)")
	c := flag.Int("c", 32, "trial: worker threads (C)")
	warmup := flag.Int("warmup", 512, "trial: unmeasured warmup invocations")
	period := flag.Duration("period", 32*time.Second, "burst: period between bursts")
	bursts := flag.Int("bursts", 10, "burst: number of bursts")
	burstSize := flag.Int("burst-size", 128, "burst: concurrent requests per burst")
	seed := flag.Int64("seed", 1, "random seed (send order is pre-computed per seed)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (post-run) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "seuss-bench: cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "seuss-bench: cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "seuss-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "seuss-bench: memprofile:", err)
			}
		}()
	}

	sim := seuss.New()
	cluster, err := buildCluster(sim, *backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seuss-bench:", err)
		os.Exit(1)
	}

	switch *mode {
	case "trial":
		fns := make([]seuss.Function, *m)
		for i := range fns {
			fns[i] = seuss.NOP(i)
		}
		res := cluster.RunTrial(seuss.Trial{N: *n, Fns: fns, C: *c, Seed: *seed, Warmup: *warmup})
		fmt.Printf("backend=%s N=%d M=%d C=%d\n", *backend, *n, *m, *c)
		fmt.Printf("completed=%d errors=%d elapsed=%v throughput=%.1f req/s\n",
			res.Completed, res.Errors, res.Elapsed.Round(time.Millisecond), res.Throughput())
		fmt.Printf("latency: %s\n", res.Summary())
	case "burst":
		bgFns := make([]seuss.Function, 16)
		for i := range bgFns {
			bgFns[i] = seuss.IOBound(fmt.Sprintf("bg%02d/io", i), "http://ext/block", 250*time.Millisecond)
		}
		tl := cluster.RunBurst(seuss.Burst{
			Threads:    128,
			BGFns:      bgFns,
			BGRate:     72,
			BurstEvery: *period,
			BurstSize:  *burstSize,
			BurstCPUms: 150,
			Bursts:     *bursts,
			Seed:       *seed,
		})
		fmt.Printf("backend=%s period=%v bursts=%d size=%d\n", *backend, *period, *bursts, *burstSize)
		fmt.Printf("background: %d requests, %d errors, p99=%v, max gap=%v\n",
			tl.Count("background"), tl.Errors("background"),
			seuss.Summarize(tl.Latencies("background")).P99.Round(time.Millisecond),
			tl.MaxGap("background").Round(time.Millisecond))
		fmt.Printf("burst:      %d requests, %d errors, p99=%v\n",
			tl.Count("burst"), tl.Errors("burst"),
			seuss.Summarize(tl.Latencies("burst")).P99.Round(time.Millisecond))
	default:
		fmt.Fprintln(os.Stderr, "seuss-bench: unknown mode", *mode)
		os.Exit(1)
	}
}

func buildCluster(sim *seuss.Simulation, backend string) (*seuss.Cluster, error) {
	switch backend {
	case "seuss":
		cfg := seuss.NodeDefaults()
		cfg.HTTPHandler = func(url string) (string, time.Duration, error) {
			return "OK", 250 * time.Millisecond, nil
		}
		return sim.NewSeussCluster(cfg)
	case "linux":
		return sim.NewLinuxCluster(seuss.LinuxConfig{Stemcells: 256, ContainerLimit: 1024}), nil
	default:
		return nil, fmt.Errorf("unknown backend %q", backend)
	}
}
