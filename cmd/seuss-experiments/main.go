// Command seuss-experiments regenerates the tables and figures of the
// SEUSS paper's evaluation (§7) and writes both human-readable tables
// and TSV series for plotting.
//
// Usage:
//
//	seuss-experiments [-run all|table1|table2|table3|fig4|fig5|fig6|fig7|fig8|fabric|failover|policy]
//	                  [-out DIR] [-quick] [-seed N] [-trace-file CSV]
//
// -quick shrinks iteration counts and sweep ranges for a fast pass;
// the default sizes reproduce the full experiments (minutes of wall
// time for the figure sweeps). -trace-file replaces the policy
// experiment's synthetic key population with one parsed from a CSV of
// `key,process,mean_ms[,sigma[,cpu_ms]]` rows.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"seuss/internal/experiments"
	"seuss/internal/workload"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all, fig1, table1, table2, table3, fig4, fig5, fig6, fig7, fig8, fabric, failover, policy")
	out := flag.String("out", "", "directory for TSV outputs (default: none written)")
	quick := flag.Bool("quick", false, "reduced iteration counts for a fast pass")
	seed := flag.Int64("seed", 1, "experiment seed")
	traceFile := flag.String("trace-file", "", "CSV trace for the policy experiment (key,process,mean_ms[,sigma[,cpu_ms]])")
	flag.Parse()

	want := func(name string) bool { return *run == "all" || *run == name }
	writeTSV := func(name, content string) {
		if *out == "" {
			return
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	if want("fig1") {
		f, err := experiments.RunFigure1()
		if err != nil {
			fatal(err)
		}
		fmt.Println(f.Render())
	}
	if want("table1") {
		iters := 475
		if *quick {
			iters = 25
		}
		t, err := experiments.RunTable1(iters)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
	}
	if want("table2") {
		iters := 100
		if *quick {
			iters = 10
		}
		t, err := experiments.RunTable2(iters)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
	}
	if want("table3") {
		sample := 1500
		if *quick {
			sample = 400
		}
		t, err := experiments.RunTable3(sample)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
	}
	if want("fig4") {
		cfg := experiments.Figure4Config{Seed: *seed}
		if *quick {
			cfg.SetSizes = []int{64, 256, 1024, 4096, 16384}
			cfg.N = 600
		}
		f, err := experiments.RunFigure4(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(f.Render())
		writeTSV("figure4.tsv", f.TSV())
	}
	if want("fabric") {
		cfg := experiments.FabricConfig{Seed: *seed}
		if *quick {
			cfg.SetSizes = []int{64, 256, 1024}
			cfg.N = 400
		}
		f, err := experiments.RunFabric(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(f.Render())
		writeTSV("fabric.tsv", f.TSV())
	}
	if want("failover") {
		cfg := experiments.FailoverConfig{Seed: *seed}
		if *quick {
			cfg.N = 300
			cfg.M = 16
		}
		f, err := experiments.RunFailover(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(f.Render())
		writeTSV("failover.tsv", f.TSV())
	}
	if want("policy") {
		cfg := experiments.PolicyConfig{Seed: *seed}
		if *quick {
			cfg.HotKeys = 20
			cfg.PeriodicKeys = 60
			cfg.OnceKeys = 200
		}
		if *traceFile != "" {
			f, err := os.Open(*traceFile)
			if err != nil {
				fatal(err)
			}
			keys, err := workload.ParseTraceCSV(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			cfg.Keys = keys
		}
		f, err := experiments.RunPolicy(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(f.Render())
		writeTSV("policy.tsv", f.TSV())
	}
	if want("fig5") {
		n := 1000
		if *quick {
			n = 400
		}
		f, err := experiments.RunFigure5(nil, n, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(f.Render())
	}
	for _, b := range []struct {
		name   string
		period time.Duration
	}{
		{"fig6", 32 * time.Second},
		{"fig7", 16 * time.Second},
		{"fig8", 8 * time.Second},
	} {
		if !want(b.name) {
			continue
		}
		cfg := experiments.BurstConfig{Period: b.period, Seed: *seed}
		if *quick {
			cfg.Bursts = 5
			cfg.Threads = 64
		}
		f, err := experiments.RunBurst(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(f.Render())
		writeTSV(b.name+".tsv", f.TSV())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seuss-experiments:", err)
	os.Exit(1)
}
