package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

// daemonFlags enumerates every flag seuss-node registers, via the same
// registerFlags main() uses — so the test can't drift from the binary.
func daemonFlags(t *testing.T) []*flag.Flag {
	t.Helper()
	fs := flag.NewFlagSet("seuss-node", flag.ContinueOnError)
	registerFlags(fs)
	var flags []*flag.Flag
	fs.VisitAll(func(f *flag.Flag) { flags = append(flags, f) })
	if len(flags) == 0 {
		t.Fatal("registerFlags registered no flags")
	}
	return flags
}

// TestFlagSetIsExactlyTheDocumentedOne pins the daemon's flag roster.
// Adding a flag without updating this list (and, per the companion
// tests, the README and the package doc comment) is a test failure —
// that's the point: flags must not drift from the docs.
func TestFlagSetIsExactlyTheDocumentedOne(t *testing.T) {
	want := map[string]bool{
		"addr":          true,
		"shards":        true,
		"no-ao":         true,
		"no-steal":      true,
		"deadline":      true,
		"fault-seed":    true,
		"fault-rate":    true,
		"snapdir":       true,
		"snap-disk-cap": true,
		"no-prewarm":    true,
		"policy":        true,
		"keepalive":     true,
		"policy-tick":   true,
		"pprof":         true,
	}
	got := map[string]bool{}
	for _, f := range daemonFlags(t) {
		got[f.Name] = true
	}
	for name := range want {
		if !got[name] {
			t.Errorf("flag -%s disappeared from registerFlags; update the docs and this roster together", name)
		}
	}
	for name := range got {
		if !want[name] {
			t.Errorf("flag -%s is registered but not in the documented roster; add it to README.md, the main.go doc comment, and this test", name)
		}
	}
}

// TestEveryFlagHasUsageText rejects flags registered with an empty
// usage string — `seuss-node -h` must explain every knob.
func TestEveryFlagHasUsageText(t *testing.T) {
	for _, f := range daemonFlags(t) {
		if strings.TrimSpace(f.Usage) == "" {
			t.Errorf("flag -%s has no usage text", f.Name)
		}
	}
}

// TestEveryFlagDocumentedInREADME requires each registered flag to
// appear as `-<name>` in the repository README, where the flags table
// and the snapshot-persistence quickstart live.
func TestEveryFlagDocumentedInREADME(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("read README.md: %v", err)
	}
	doc := string(readme)
	for _, f := range daemonFlags(t) {
		if !strings.Contains(doc, "-"+f.Name) {
			t.Errorf("flag -%s is not documented in README.md", f.Name)
		}
	}
}

// TestEveryFlagDocumentedInDocComment requires each registered flag to
// appear in this package's doc comment (the usage synopsis at the top
// of main.go), so `go doc` and the binary agree.
func TestEveryFlagDocumentedInDocComment(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatalf("read main.go: %v", err)
	}
	// Only the doc comment counts: everything before `package main`.
	// A flag that is merely registered further down must still be
	// named in the synopsis.
	text := string(src)
	idx := strings.Index(text, "\npackage main")
	if idx < 0 {
		t.Fatal("main.go has no package clause?")
	}
	docComment := text[:idx]
	for _, f := range daemonFlags(t) {
		if !strings.Contains(docComment, "-"+f.Name) {
			t.Errorf("flag -%s is missing from the main.go doc comment synopsis", f.Name)
		}
	}
}
