// Command seuss-node runs a SEUSS compute node behind a real HTTP
// endpoint — a demonstration that the library is a working function
// platform, not only an experiment harness.
//
//	seuss-node [-addr :8080] [-shards N] [-no-ao] [-no-steal]
//	           [-deadline 0] [-fault-seed 0] [-fault-rate 0]
//	           [-snapdir DIR] [-snap-disk-cap BYTES] [-no-prewarm]
//	           [-policy none|fixed|hybrid] [-keepalive 10m]
//	           [-policy-tick 30s] [-pprof localhost:6060]
//
// The node is a sharded pool: N shared-nothing compute shards (default:
// one per CPU), each hydrated from a single encoded base-runtime
// snapshot, behind one front door. Requests route to shards by
// function-key hash; HTTP requests are served concurrently with no
// global lock — the old "simulation is single-threaded by design" mutex
// is gone, replaced by per-shard goroutine ownership.
//
// Invoke a function:
//
//	curl -s localhost:8080/invoke -d '{
//	  "key":  "alice/hello",
//	  "source": "function main(args) { return {msg: \"hello \" + args.name}; }",
//	  "args": {"name": "world"}
//	}'
//
// The response carries the driver's output plus a process-unique
// request ID, the path taken (cold, warm, hot, lukewarm), the serving
// shard, and the shard-side virtual latency.
//
// -snapdir enables the on-disk snapshot tier: evicted snapshot stacks
// demote to DIR instead of being destroyed, later invocations restore
// them via the lukewarm path, a graceful shutdown flushes every
// resident function snapshot to DIR, and the next boot with the same
// -snapdir prewarms the hottest lineages back into memory — so a
// restarted node answers its first requests warm, not cold.
// -snap-disk-cap bounds the tier in bytes (LRU eviction; -1 =
// unlimited, 0 = reject all writes).
// GET /stats reports pool-aggregated caches and counters (each shard's
// contribution snapshotted between invocations, never mid-flight),
// including the robustness ledger — retries, breaker trips, UC
// crashes, pressure degradations. GET /metrics serves the same data as
// Prometheus text exposition — invocation-latency histograms split by
// cold/warm/hot, cache hit/miss counters, breaker transitions, trace
// drop accounting — read from lock-free per-shard recorders (a scrape
// never waits behind a busy shard). GET /healthz reports liveness plus
// every shard's circuit-breaker state ("ok" when all breakers are
// closed, "degraded" otherwise). GET /trace exports the event timeline
// as Chrome trace-event JSON; /trace?follow=1 streams new events live
// as chunked JSONL. Errors are JSON on every endpoint.
//
// The server shuts down gracefully: SIGINT/SIGTERM stop the listener,
// drain in-flight invocations (bounded by a 30 s grace period), and
// only then stop the shard goroutines. Read/write/idle timeouts bound
// every connection so a stuck client cannot pin a handler forever.
//
// -policy attaches a lifecycle policy (DESIGN.md §15): "none" scales
// every function to zero as soon as the reaper sees it idle, "fixed"
// gives every function the -keepalive window (default 10m), "hybrid"
// learns per-function windows from inter-arrival histograms and
// prewarms periodic functions ahead of their predicted next arrival
// (requires -snapdir for scale-to-zero demotion to survive). A
// wall-clock ticker fires every -policy-tick, advancing each shard's
// virtual clock by the tick period and running one reaper pass. With
// no -policy, idle state is kept until memory pressure evicts it —
// the pre-policy behavior.
//
// -fault-seed and -fault-rate enable the deterministic fault injector
// on every shard (see internal/fault): the same seed replays the same
// fault sequence, which is how the CI fault matrix exercises the
// containment machinery against real HTTP traffic.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"seuss"
)

type server struct {
	pool   *seuss.NodePool
	tracer *seuss.Trace
}

type invokeRequest struct {
	Key     string          `json:"key"`
	Source  string          `json:"source"`
	Args    json.RawMessage `json:"args"`
	Runtime string          `json:"runtime,omitempty"`
}

type invokeResponse struct {
	RequestID uint64          `json:"request_id"`
	Path      string          `json:"path"`
	Shard     int             `json:"shard"`
	Stolen    bool            `json:"stolen,omitempty"`
	LatencyMS float64         `json:"latency_ms"`
	Output    json.RawMessage `json:"output"`
}

// writeJSON emits a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError emits the uniform JSON error envelope every endpoint uses.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// requireMethod enforces the endpoint's HTTP method, answering with a
// JSON 405 otherwise.
func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeError(w, http.StatusMethodNotAllowed, method+" only")
		return false
	}
	return true
}

func (s *server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req invokeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	if req.Key == "" || req.Source == "" {
		writeError(w, http.StatusBadRequest, "key and source are required")
		return
	}
	args := "{}"
	if len(req.Args) > 0 {
		args = string(req.Args)
	}

	// No lock: the pool is safe for concurrent use, and each request
	// runs on whichever shard owns (or steals) its key.
	inv, err := s.pool.InvokeRuntime(req.Runtime, req.Key, req.Source, args)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "invocation failed: "+err.Error())
		return
	}
	writeJSON(w, http.StatusOK, invokeResponse{
		RequestID: inv.RequestID,
		Path:      inv.Path,
		Shard:     inv.Shard,
		Stolen:    inv.Stolen,
		LatencyMS: float64(inv.Latency.Microseconds()) / 1000,
		Output:    json.RawMessage(inv.Output),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	st, err := s.pool.Stats()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "stats: "+err.Error())
		return
	}
	shards := make([]map[string]interface{}, 0, len(st.Shards))
	for _, ss := range st.Shards {
		shards = append(shards, map[string]interface{}{
			"shard":            ss.Shard,
			"virtual_clock":    ss.Clock.String(),
			"cold":             ss.Node.Cold,
			"warm":             ss.Node.Warm,
			"hot":              ss.Node.Hot,
			"lukewarm":         ss.Node.Lukewarm,
			"cached_snapshots": ss.CachedSnapshots,
			"idle_ucs":         ss.IdleUCs,
			"memory_used_mb":   float64(ss.Mem.BytesInUse) / 1e6,
		})
	}
	rob := st.Robustness
	body := map[string]interface{}{
		"shards":             s.pool.Shards(),
		"cold":               st.Cold,
		"warm":               st.Warm,
		"hot":                st.Hot,
		"lukewarm":           st.Lukewarm,
		"errors":             st.Errors,
		"stolen":             st.Stolen,
		"cached_snapshots":   st.CachedSnapshots,
		"idle_ucs":           st.IdleUCs,
		"ucs_deployed":       st.UCsDeployed,
		"ucs_reclaimed":      st.UCsReclaimed,
		"snapshots_captured": st.SnapshotsCaptured,
		"snapshots_evicted":  st.SnapshotsEvicted,
		"memory_used_mb":     float64(st.MemoryUsedBytes) / 1e6,
		"per_shard":          shards,
		"breakers":           st.Breakers,
		"robustness": map[string]int64{
			"retries":                     rob.Retries,
			"breaker_trips":               rob.BreakerTrips,
			"rerouted":                    rob.Rerouted,
			"requeued":                    st.Requeued,
			"stalls":                      st.Stalls,
			"uc_crashes":                  rob.UCCrashes,
			"deadlines_exceeded":          rob.DeadlinesExceeded,
			"pressure_idle_reclaims":      rob.PressureIdleReclaims,
			"pressure_snapshot_evictions": rob.PressureSnapshotEvictions,
			"pressure_cold_fallbacks":     rob.PressureColdFallbacks,
			"faults_injected":             rob.FaultsInjected,
		},
	}
	// The fault-point roster: every point the injector can fire on this
	// node, with its registered behavior — so an operator reading /stats
	// can interpret a -fault-seed/-fault-rate run without the source.
	points := map[string]string{}
	for _, fp := range seuss.FaultPoints() {
		points[fp.Point] = fp.Description
	}
	body["fault_points"] = points
	if store := s.pool.SnapshotStore(); store != nil {
		ss := store.Stats()
		body["snapshot_tier"] = map[string]interface{}{
			"entries":          ss.Entries,
			"bytes":            ss.Bytes,
			"disk_files":       ss.DiskFiles,
			"disk_bytes":       ss.DiskBytes,
			"hits":             ss.Hits,
			"misses":           ss.Misses,
			"puts":             ss.Puts,
			"put_rejected":     ss.PutRejected,
			"evictions":        ss.Evictions,
			"corrupt_dropped":  ss.CorruptDropped,
			"demotions":        st.SnapshotsDemoted,
			"promotions":       st.SnapshotsPromoted,
			"prewarmed":        st.SnapshotsPrewarmed,
			"node_tier_hits":   st.TierHits,
			"node_tier_misses": st.TierMisses,
			"ws_dropped":       ss.WSDropped,
		}
		body["working_set"] = map[string]interface{}{
			"records_recorded": st.WorkingSet.Recorded,
			"records_merged":   st.WorkingSet.Merged,
			"records_corrupt":  st.WorkingSet.Corrupt,
			"prefetched_pages": st.WorkingSet.PrefetchedPages,
			"coverage_hits":    st.WorkingSet.CoverageHits,
			"coverage_misses":  st.WorkingSet.CoverageMisses,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// handleHealthz reports liveness plus each shard's circuit-breaker
// state. The status degrades (but the endpoint still answers 200 —
// the node IS alive and re-routing) when any breaker is not closed.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	breakers := s.pool.Pool().BreakerStates()
	status := "ok"
	for _, b := range breakers {
		if b != "closed" && b != "disabled" {
			status = "degraded"
			break
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":   status,
		"breakers": breakers,
	})
}

// handleMetrics serves the pool's merged metrics snapshot in
// Prometheus text exposition format, plus the trace buffer's retention
// accounting. The scrape reads lock-free per-shard recorders — it
// never waits behind a busy shard.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := seuss.WriteMetricsText(w, s.pool.Metrics()); err != nil {
		return // client went away mid-write; headers are already out
	}
	if s.tracer != nil {
		fmt.Fprintf(w, "# HELP seuss_trace_events Events currently retained in the trace buffer.\n"+
			"# TYPE seuss_trace_events gauge\n"+
			"seuss_trace_events %d\n", s.tracer.Len())
		fmt.Fprintf(w, "# HELP seuss_trace_dropped_total Trace events dropped after the retention budget filled.\n"+
			"# TYPE seuss_trace_dropped_total counter\n"+
			"seuss_trace_dropped_total %d\n", s.tracer.Dropped())
	}
}

// handleTrace serves the pool's event timeline. The default form is
// Chrome trace-event JSON ({"traceEvents": [...], "otherData": {...}}
// with drop accounting) streamed event by event — load it at
// chrome://tracing or ui.perfetto.dev. With ?follow=1 it switches to a
// live chunked JSONL feed of events as they are recorded (newline-
// delimited trace.Event objects), until the client disconnects — so
// the retained buffer is not the only window into a long run. Events
// from different shards interleave on their own per-shard virtual
// clocks.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	if s.tracer == nil {
		writeError(w, http.StatusNotFound, "tracing disabled")
		return
	}
	if r.URL.Query().Get("follow") == "1" {
		s.followTrace(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.tracer.WriteChromeTrace(w); err != nil {
		// Mid-stream failure: the body is already partially written, so
		// no JSON error envelope can follow it.
		log.Printf("seuss-node: trace export: %v", err)
	}
}

// followTrace streams newly recorded events as chunked JSONL until the
// client goes away. Only events recorded after the subscription starts
// are delivered; fetch /trace first for the retained history.
func (s *server) followTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush() // commit headers so the client sees the stream open
	}
	ch, cancel := s.tracer.Subscribe(256)
	defer cancel()
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// mux wires the server's routes (shared with the tests).
func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/invoke", s.handleInvoke)
	m.HandleFunc("/stats", s.handleStats)
	m.HandleFunc("/healthz", s.handleHealthz)
	m.HandleFunc("/metrics", s.handleMetrics)
	m.HandleFunc("/trace", s.handleTrace)
	return m
}

// drainTimeout bounds graceful shutdown: in-flight invocations get
// this long to finish before the server gives up on stragglers.
const drainTimeout = 30 * time.Second

// options is the daemon's flag set, kept in one struct so the
// registration test can enumerate every flag and hold it against the
// README's documentation.
type options struct {
	addr        *string
	shards      *int
	noAO        *bool
	noSteal     *bool
	noPrewarm   *bool
	deadline    *time.Duration
	faultSeed   *int64
	faultRate   *float64
	snapDir     *string
	snapDiskCap *int64
	policy      *string
	keepalive   *time.Duration
	policyTick  *time.Duration
	pprofAddr   *string
}

// registerFlags declares every seuss-node flag on fs.
func registerFlags(fs *flag.FlagSet) *options {
	return &options{
		addr:        fs.String("addr", ":8080", "listen address"),
		shards:      fs.Int("shards", runtime.NumCPU(), "compute shard count"),
		noAO:        fs.Bool("no-ao", false, "disable anticipatory optimizations"),
		noSteal:     fs.Bool("no-steal", false, "disable work stealing (pin keys to owner shards)"),
		noPrewarm:   fs.Bool("no-prewarm", false, "skip the boot-time snapshot-tier prewarm (first hits restore lukewarm)"),
		deadline:    fs.Duration("deadline", 0, "per-invocation deadline (virtual time; 0 = unlimited)"),
		faultSeed:   fs.Int64("fault-seed", 0, "deterministic fault-injection seed"),
		faultRate:   fs.Float64("fault-rate", 0, "fault-point firing probability (0 disables injection)"),
		snapDir:     fs.String("snapdir", "", "snapshot disk-tier directory (empty = memory-only; evictions destroy snapshots)"),
		snapDiskCap: fs.Int64("snap-disk-cap", -1, "snapshot disk-tier capacity in bytes (-1 = unlimited, 0 = reject all writes)"),
		policy:      fs.String("policy", "", "lifecycle policy: none, fixed, or hybrid (empty = keep idle state until memory pressure)"),
		keepalive:   fs.Duration("keepalive", 10*time.Minute, "keep-alive window for -policy fixed"),
		policyTick:  fs.Duration("policy-tick", 30*time.Second, "lifecycle reaper period (wall clock; each tick advances the shards' virtual clocks by this much)"),
		pprofAddr:   fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)"),
	}
}

func main() {
	opts := registerFlags(flag.CommandLine)
	flag.Parse()
	addr, shards, noAO, noSteal := opts.addr, opts.shards, opts.noAO, opts.noSteal
	deadline, faultSeed, faultRate := opts.deadline, opts.faultSeed, opts.faultRate
	snapDir, snapDiskCap, pprofAddr := opts.snapDir, opts.snapDiskCap, opts.pprofAddr

	if *pprofAddr != "" {
		// A separate listener keeps the profiling surface off the public
		// port; http.DefaultServeMux carries the pprof handlers.
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("seuss-node: pprof: %v", err)
			}
		}()
	}

	cfg := seuss.PoolConfig{
		Shards:              *shards,
		Node:                seuss.NodeDefaults(),
		DisableWorkStealing: *noSteal,
		FaultSeed:           *faultSeed,
		FaultRate:           *faultRate,
	}
	cfg.Node.DisableAO = *noAO
	cfg.Node.InvokeDeadline = *deadline
	cfg.Node.Tracer = seuss.NewTrace(100000)
	// A live daemon seeds deploy-time entropy from the OS boot
	// generation: clones deployed from one snapshot diverge across
	// restarts too, not just within one process (DESIGN.md §14). The
	// source is shared by every shard, hence the concurrency-safe form.
	cfg.Node.Entropy = seuss.NewEntropySource()
	if *opts.policy != "" {
		pol, err := seuss.NewLifecyclePolicy(*opts.policy, *opts.keepalive)
		if err != nil {
			log.Fatalf("seuss-node: %v", err)
		}
		cfg.Node.Policy = pol
	}
	if *snapDir != "" {
		store, err := seuss.OpenSnapshotStore(*snapDir, *snapDiskCap)
		if err != nil {
			log.Fatalf("seuss-node: snapshot store: %v", err)
		}
		cfg.Node.SnapStore = store
		st := store.Stats()
		log.Printf("snapshot tier at %s: %d entries, %.1f MB on disk", *snapDir, st.Entries, float64(st.Bytes)/1e6)
	}
	start := time.Now()
	pool, err := seuss.NewNodePool(cfg)
	if err != nil {
		log.Fatalf("seuss-node: boot: %v", err)
	}
	log.Printf("pool booted in %v: %d shards hydrated from one runtime snapshot (AO=%v)",
		time.Since(start), pool.Shards(), !*noAO)
	if *faultRate > 0 {
		log.Printf("fault injection armed: seed=%d rate=%g", *faultSeed, *faultRate)
	}
	if cfg.Node.SnapStore != nil && !*opts.noPrewarm {
		// Prewarm the tier's hottest lineages back into shard memory so
		// the first request after a restart is warm, not cold.
		if n, err := pool.Prewarm(0); err != nil {
			log.Printf("seuss-node: prewarm: %v", err)
		} else if n > 0 {
			log.Printf("prewarmed %d function snapshot stacks from %s", n, *snapDir)
		}
	}

	// The lifecycle reaper: a wall-clock ticker mapped onto the shards'
	// virtual clocks (idle time is modelled explicitly — invocations
	// only advance a shard's clock by their own latencies, so each tick
	// contributes its period as idle time before the reaper pass).
	policyStop := make(chan struct{})
	policyDone := make(chan struct{})
	if cfg.Node.Policy != nil {
		log.Printf("lifecycle policy %s armed: reaper every %v", cfg.Node.Policy.Name(), *opts.policyTick)
		go func() {
			defer close(policyDone)
			tick := time.NewTicker(*opts.policyTick)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if ts, err := pool.PolicyTick(*opts.policyTick); err != nil {
						log.Printf("seuss-node: policy tick: %v", err)
					} else if ts.ExpiredUCs+ts.DemotedLineages+ts.Prewarmed > 0 {
						log.Printf("reaper: %d UCs expired, %d lineages scaled to zero, %d prewarmed",
							ts.ExpiredUCs, ts.DemotedLineages, ts.Prewarmed)
					}
				case <-policyStop:
					return
				}
			}
		}()
	} else {
		close(policyDone)
	}

	s := &server{pool: pool, tracer: cfg.Node.Tracer}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.mux(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	// SIGINT/SIGTERM: stop accepting, drain in-flight invocations, then
	// stop the shard goroutines — requests in flight complete, requests
	// after the signal are refused at the listener.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("shutdown signal; draining in-flight invocations (up to %v)", drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			log.Printf("seuss-node: drain: %v", err)
		}
	}()

	log.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("seuss-node: serve: %v", err)
	}
	close(policyStop)
	<-policyDone
	if *snapDir != "" {
		// Drained: every in-flight invocation finished, so flushing the
		// resident snapshots now captures the final state of every shard.
		if n, err := pool.FlushSnapshots(); err != nil {
			log.Printf("seuss-node: snapshot flush: %v", err)
		} else {
			log.Printf("flushed %d function snapshots to %s", n, *snapDir)
		}
	}
	pool.Close()
	log.Printf("drained and closed; goodbye")
}
