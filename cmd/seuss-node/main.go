// Command seuss-node runs a SEUSS compute node behind a real HTTP
// endpoint — a demonstration that the library is a working function
// platform, not only an experiment harness.
//
//	seuss-node [-addr :8080] [-no-ao]
//
// Invoke a function:
//
//	curl -s localhost:8080/invoke -d '{
//	  "key":  "alice/hello",
//	  "source": "function main(args) { return {msg: \"hello \" + args.name}; }",
//	  "args": {"name": "world"}
//	}'
//
// The response carries the driver's output plus the path taken (cold,
// warm, hot) and the node-side virtual latency. GET /stats reports the
// node's caches and counters; GET /healthz liveness.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"seuss"
)

type server struct {
	mu     sync.Mutex // the simulation is single-threaded by design
	sim    *seuss.Simulation
	node   *seuss.Node
	tracer *seuss.Trace
}

type invokeRequest struct {
	Key    string          `json:"key"`
	Source string          `json:"source"`
	Args   json.RawMessage `json:"args"`
}

type invokeResponse struct {
	Path      string          `json:"path"`
	LatencyMS float64         `json:"latency_ms"`
	Output    json.RawMessage `json:"output"`
}

func (s *server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req invokeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Key == "" || req.Source == "" {
		http.Error(w, "key and source are required", http.StatusBadRequest)
		return
	}
	args := "{}"
	if len(req.Args) > 0 {
		args = string(req.Args)
	}

	s.mu.Lock()
	inv, err := s.node.InvokeSync(req.Key, req.Source, args)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, "invocation failed: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(invokeResponse{
		Path:      inv.Path,
		LatencyMS: float64(inv.Latency.Microseconds()) / 1000,
		Output:    json.RawMessage(inv.Output),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := s.node.Stats()
	clock := s.sim.Clock()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]interface{}{
		"virtual_clock":      clock.String(),
		"cold":               st.Cold,
		"warm":               st.Warm,
		"hot":                st.Hot,
		"errors":             st.Errors,
		"cached_snapshots":   st.CachedSnapshots,
		"idle_ucs":           st.IdleUCs,
		"ucs_deployed":       st.UCsDeployed,
		"ucs_reclaimed":      st.UCsReclaimed,
		"snapshots_captured": st.SnapshotsCaptured,
		"snapshots_evicted":  st.SnapshotsEvicted,
		"memory_used_mb":     float64(st.MemoryUsedBytes) / 1e6,
	})
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	noAO := flag.Bool("no-ao", false, "disable anticipatory optimizations")
	flag.Parse()

	simul := seuss.New()
	cfg := seuss.NodeDefaults()
	cfg.DisableAO = *noAO
	cfg.Tracer = seuss.NewTrace(100000)
	start := time.Now()
	node, err := simul.NewNode(cfg)
	if err != nil {
		log.Fatalf("seuss-node: boot: %v", err)
	}
	log.Printf("node booted in %v (AO=%v); runtime snapshot cached", time.Since(start), !*noAO)

	s := &server{sim: simul, node: node, tracer: cfg.Tracer}
	log.Printf("listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, s.mux()))
}

// mux wires the server's routes (shared with the tests).
func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/invoke", s.handleInvoke)
	m.HandleFunc("/stats", s.handleStats)
	m.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	m.HandleFunc("/trace", s.handleTrace)
	return m
}

// handleTrace serves the node's event timeline in Chrome trace-event
// format — load it at chrome://tracing or ui.perfetto.dev.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tracer == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.tracer.WriteChromeTrace(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
