package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"seuss"
)

func newTestPool(t *testing.T, shards int) *seuss.NodePool {
	t.Helper()
	pool, err := seuss.NewNodePool(seuss.PoolConfig{Shards: shards, Node: seuss.NodeDefaults()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	return pool
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := &server{pool: newTestPool(t, 2)}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, body string) (*http.Response, invokeResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/invoke", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out invokeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// errorBody decodes the uniform JSON error envelope, failing the test
// if the response is not JSON with a non-empty "error" field.
func errorBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error Content-Type = %q, want application/json", ct)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if e.Error == "" {
		t.Error("error body has empty \"error\" field")
	}
	return e.Error
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	var body struct {
		Status   string   `json:"status"`
		Breakers []string `json:"breakers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" {
		t.Errorf("status = %q", body.Status)
	}
	if len(body.Breakers) != 2 {
		t.Fatalf("breakers = %v, want one per shard", body.Breakers)
	}
	for i, b := range body.Breakers {
		if b != "closed" {
			t.Errorf("shard %d breaker = %q, want closed", i, b)
		}
	}
}

func TestMethodEnforcement(t *testing.T) {
	// Every endpoint rejects the wrong verb with a JSON 405 carrying an
	// Allow header — same envelope as /invoke errors.
	ts := newTestServer(t)
	for path, allow := range map[string]string{
		"/invoke":  http.MethodPost,
		"/stats":   http.MethodGet,
		"/healthz": http.MethodGet,
		"/metrics": http.MethodGet,
		"/trace":   http.MethodGet,
	} {
		wrong := http.MethodPost
		if allow == http.MethodPost {
			wrong = http.MethodGet
		}
		req, _ := http.NewRequest(wrong, ts.URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status = %d, want 405", wrong, path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != allow {
			t.Errorf("%s: Allow = %q, want %q", path, got, allow)
		}
		errorBody(t, resp)
		resp.Body.Close()
	}
}

func TestInvokeOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	body := `{"key": "web/hello", "source": "function main(args) { return {hi: args.name}; }", "args": {"name": "http"}}`

	resp, out := post(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Path != "cold" {
		t.Errorf("path = %q", out.Path)
	}
	if out.LatencyMS < 4 || out.LatencyMS > 12 {
		t.Errorf("latency = %.2f ms", out.LatencyMS)
	}
	if !strings.Contains(string(out.Output), `"hi":"http"`) {
		t.Errorf("output = %s", out.Output)
	}

	// Second call: hot, on the same owner shard.
	_, out2 := post(t, ts, body)
	if out2.Path != "hot" {
		t.Errorf("second path = %q", out2.Path)
	}
	if out2.Shard != out.Shard {
		t.Errorf("key moved shards: %d -> %d", out.Shard, out2.Shard)
	}
}

func TestInvokeValidation(t *testing.T) {
	ts := newTestServer(t)
	for name, body := range map[string]string{
		"empty":     `{}`,
		"bad json":  `{`,
		"no source": `{"key": "x"}`,
	} {
		resp, _ := post(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		errorBody(t, resp)
	}
}

func TestInvokeBadSource(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := post(t, ts, `{"key": "bad/fn", "source": "function main( {"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("status = %d, want 422", resp.StatusCode)
	}
	errorBody(t, resp)
}

func TestStatsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts, `{"key": "s/fn", "source": "function main(a) { return {}; }"}`)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["cold"].(float64) != 1 {
		t.Errorf("cold = %v", stats["cold"])
	}
	if stats["cached_snapshots"].(float64) != 1 {
		t.Errorf("cached = %v", stats["cached_snapshots"])
	}
	if stats["memory_used_mb"].(float64) < 100 {
		t.Errorf("memory = %v", stats["memory_used_mb"])
	}
	if stats["shards"].(float64) != 2 {
		t.Errorf("shards = %v", stats["shards"])
	}
	if per := stats["per_shard"].([]interface{}); len(per) != 2 {
		t.Errorf("per_shard has %d entries", len(per))
	}
}

func TestConcurrentHTTPInvocations(t *testing.T) {
	// The lock-free server must survive parallel clients: no lost or
	// failed requests, and /stats totals match what clients observed.
	ts := newTestServer(t)
	const (
		workers = 8
		perW    = 10
		keys    = 5
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*perW)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := fmt.Sprintf("par/fn%d", (w*perW+i)%keys)
				body := fmt.Sprintf(`{"key": %q, "source": "function main(a) { return {ok: true}; }"}`, key)
				resp, err := http.Post(ts.URL+"/invoke", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var out invokeResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", key, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	total := stats["cold"].(float64) + stats["warm"].(float64) + stats["hot"].(float64)
	if total != workers*perW {
		t.Errorf("served %v invocations, want %d", total, workers*perW)
	}
	if stats["errors"].(float64) != 0 {
		t.Errorf("errors = %v", stats["errors"])
	}
}

func TestTraceEndpoint(t *testing.T) {
	cfg := seuss.PoolConfig{Shards: 2, Node: seuss.NodeDefaults()}
	tracer := seuss.NewTrace(0)
	cfg.Node.Tracer = tracer
	pool, err := seuss.NewNodePool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	srv := &server{pool: pool, tracer: tracer}
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	body := `{"key": "tr/fn", "source": "function main(a) { return {}; }"}`
	http.Post(ts.URL+"/invoke", "application/json", strings.NewReader(body))

	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
		OtherData   map[string]string        `json:"otherData"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("empty trace after an invocation")
	}
	if doc.OtherData["dropped"] != "0" {
		t.Errorf("otherData = %v", doc.OtherData)
	}
	// The invoke span carries the request ID returned by /invoke.
	found := false
	for _, ev := range doc.TraceEvents {
		if args, ok := ev["args"].(map[string]interface{}); ok && args["id"] != nil {
			found = true
			break
		}
	}
	if !found {
		t.Error("no event carries a request id")
	}
}

func TestTraceFollowStreamsLiveEvents(t *testing.T) {
	cfg := seuss.PoolConfig{Shards: 2, Node: seuss.NodeDefaults()}
	tracer := seuss.NewTrace(0)
	cfg.Node.Tracer = tracer
	pool, err := seuss.NewNodePool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	srv := &server{pool: pool, tracer: tracer}
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/trace?follow=1", nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	// An invocation issued after the stream opened must appear on it.
	body := `{"key": "live/fn", "source": "function main(a) { return {}; }"}`
	if _, err := http.Post(ts.URL+"/invoke", "application/json", strings.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sawInvoke := false
	for i := 0; i < 50 && sc.Scan(); i++ {
		var ev map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if ev["kind"] == "invoke" {
			sawInvoke = true
			break
		}
	}
	if !sawInvoke {
		t.Error("follow stream carried no invoke span")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	cfg := seuss.PoolConfig{Shards: 2, Node: seuss.NodeDefaults()}
	tracer := seuss.NewTrace(0)
	cfg.Node.Tracer = tracer
	pool, err := seuss.NewNodePool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	srv := &server{pool: pool, tracer: tracer}
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	body := `{"key": "m/fn", "source": "function main(a) { return {}; }"}`
	http.Post(ts.URL+"/invoke", "application/json", strings.NewReader(body))
	http.Post(ts.URL+"/invoke", "application/json", strings.NewReader(body))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`seuss_invocations_total{path="cold"} 1`,
		`seuss_invocations_total{path="hot"} 1`,
		`seuss_invocation_latency_seconds_bucket{path="cold",le="+Inf"} 1`,
		`seuss_invocation_latency_seconds_count{path="cold"} 1`,
		`seuss_snapshot_stack_lookups_total{result=`,
		`seuss_deploy_kit_lookups_total{result=`,
		"seuss_trace_events ",
		"seuss_trace_dropped_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	validateExposition(t, text)
}

// validateExposition checks Prometheus text-format invariants: every
// sample line's metric name is covered by a preceding TYPE header, no
// family header repeats, and sample values parse as numbers.
func validateExposition(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{}
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("line %d: malformed TYPE: %q", ln+1, line)
				continue
			}
			if _, dup := typed[parts[2]]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", ln+1, parts[2])
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: malformed sample: %q", ln+1, line)
			continue
		}
		base := m[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(base, suffix); fam != base && typed[fam] == "histogram" {
				base = fam
				break
			}
		}
		if _, ok := typed[base]; !ok {
			t.Errorf("line %d: sample %q has no TYPE header", ln+1, m[1])
		}
		if _, err := strconv.ParseFloat(m[3], 64); err != nil {
			t.Errorf("line %d: value %q not a number", ln+1, m[3])
		}
	}
}

func TestTraceEndpointDisabled(t *testing.T) {
	ts := newTestServer(t) // no tracer configured
	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
	errorBody(t, resp)
}

// TestStatsRobustnessLedger: a fault-armed server keeps serving (or
// failing contained) and exports the injection/containment counters
// plus per-shard breaker states through /stats.
func TestStatsRobustnessLedger(t *testing.T) {
	pool, err := seuss.NewNodePool(seuss.PoolConfig{
		Shards:    2,
		Node:      seuss.NodeDefaults(),
		FaultSeed: 1,
		FaultRate: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	ts := httptest.NewServer((&server{pool: pool}).mux())
	t.Cleanup(ts.Close)

	body := `{"key": "alice/fn", "source": "function main(args) { return {ok: true}; }"}`
	for i := 0; i < 30; i++ {
		resp, err := http.Post(ts.URL+"/invoke", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		// 200 (served) or 422 (contained fault surfaced) — never a
		// 5xx, never a hang.
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("invoke %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Breakers   []string         `json:"breakers"`
		Robustness map[string]int64 `json:"robustness"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Breakers) != 2 {
		t.Errorf("breakers = %v", st.Breakers)
	}
	if st.Robustness["faults_injected"] == 0 {
		t.Error("rate 0.25 over 30 requests injected nothing")
	}
	if _, ok := st.Robustness["uc_crashes"]; !ok {
		t.Errorf("robustness ledger missing uc_crashes: %v", st.Robustness)
	}
}
