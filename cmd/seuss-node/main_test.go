package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"seuss"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	sim := seuss.New()
	node, err := sim.NewNode(seuss.NodeDefaults())
	if err != nil {
		t.Fatal(err)
	}
	srv := &server{sim: sim, node: node}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, body string) (*http.Response, invokeResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/invoke", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out invokeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestInvokeOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	body := `{"key": "web/hello", "source": "function main(args) { return {hi: args.name}; }", "args": {"name": "http"}}`

	resp, out := post(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Path != "cold" {
		t.Errorf("path = %q", out.Path)
	}
	if out.LatencyMS < 4 || out.LatencyMS > 12 {
		t.Errorf("latency = %.2f ms", out.LatencyMS)
	}
	if !strings.Contains(string(out.Output), `"hi":"http"`) {
		t.Errorf("output = %s", out.Output)
	}

	// Second call: hot.
	_, out2 := post(t, ts, body)
	if out2.Path != "hot" {
		t.Errorf("second path = %q", out2.Path)
	}
}

func TestInvokeValidation(t *testing.T) {
	ts := newTestServer(t)
	for name, body := range map[string]string{
		"empty":     `{}`,
		"bad json":  `{`,
		"no source": `{"key": "x"}`,
	} {
		resp, _ := post(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
	// GET is rejected.
	resp, err := http.Get(ts.URL + "/invoke")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
}

func TestInvokeBadSource(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := post(t, ts, `{"key": "bad/fn", "source": "function main( {"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("status = %d, want 422", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts, `{"key": "s/fn", "source": "function main(a) { return {}; }"}`)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["cold"].(float64) != 1 {
		t.Errorf("cold = %v", stats["cold"])
	}
	if stats["cached_snapshots"].(float64) != 1 {
		t.Errorf("cached = %v", stats["cached_snapshots"])
	}
	if stats["memory_used_mb"].(float64) < 100 {
		t.Errorf("memory = %v", stats["memory_used_mb"])
	}
}

func TestTraceEndpoint(t *testing.T) {
	sim := seuss.New()
	cfg := seuss.NodeDefaults()
	tracer := seuss.NewTrace(0)
	cfg.Tracer = tracer
	node, err := sim.NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := &server{sim: sim, node: node, tracer: tracer}
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	body := `{"key": "tr/fn", "source": "function main(a) { return {}; }"}`
	http.Post(ts.URL+"/invoke", "application/json", strings.NewReader(body))

	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Error("empty trace after an invocation")
	}
}

func TestTraceEndpointDisabled(t *testing.T) {
	ts := newTestServer(t) // no tracer configured
	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
