// Package seuss is a library reproduction of "SEUSS: Skip Redundant
// Paths to Make Serverless Fast" (Cadden et al., EuroSys 2020).
//
// SEUSS deploys serverless functions from unikernel snapshots: a
// function runs inside a unikernel context (UC) — interpreter + library
// OS in one flat address space — whose instantaneous state can be
// captured black-box as an immutable snapshot and redeployed with a
// shallow page-table copy. Snapshot stacks share the interpreter image
// across every function; anticipatory optimization pre-executes likely
// paths before capture, shrinking both diffs and start times.
//
// This package is the public facade. The mechanisms underneath are real
// (hardware-style page tables with CoW over simulated frames, a real
// mini-JavaScript interpreter whose heap lives in UC pages); time is
// virtual, driven by a deterministic discrete-event engine calibrated
// against the paper's measurements. See DESIGN.md for the full
// substitution map.
//
// Quick start:
//
//	s := seuss.New()
//	node, _ := s.NewNode(seuss.NodeDefaults())
//	inv, _ := node.InvokeSync("alice/hello",
//	    `function main(args) { return {msg: "hello " + args.name}; }`,
//	    `{"name": "seuss"}`)
//	fmt.Println(inv.Path, inv.Latency, inv.Output)
package seuss

import (
	"fmt"
	"io"
	"time"

	"seuss/internal/cluster"
	"seuss/internal/core"
	"seuss/internal/entropy"
	"seuss/internal/faas"
	"seuss/internal/fault"
	"seuss/internal/metrics"
	"seuss/internal/policy"
	"seuss/internal/sched"
	"seuss/internal/shardpool"
	"seuss/internal/sim"
	"seuss/internal/snapstore"
	"seuss/internal/trace"
	"seuss/internal/workload"
)

// Simulation owns the virtual clock and event engine every component
// shares. All latencies reported by this package are virtual time.
type Simulation struct {
	eng *sim.Engine
}

// New returns a fresh simulation with the clock at zero.
func New() *Simulation {
	return &Simulation{eng: sim.NewEngine()}
}

// Clock returns the current virtual time.
func (s *Simulation) Clock() time.Duration { return time.Duration(s.eng.Now()) }

// Run drains all pending events, advancing virtual time to completion.
func (s *Simulation) Run() { s.eng.Run() }

// RunFor advances virtual time by d, running due events.
func (s *Simulation) RunFor(d time.Duration) { s.eng.RunUntil(s.eng.Now().Add(d)) }

// Engine exposes the underlying event engine for advanced scheduling.
func (s *Simulation) Engine() *sim.Engine { return s.eng }

// Task is a simulated thread of control (a client worker, a burst
// request). Blocking calls made through a Task suspend it in virtual
// time.
type Task struct {
	p *sim.Proc
}

// Sleep suspends the task for d of virtual time.
func (t *Task) Sleep(d time.Duration) { t.p.Sleep(d) }

// Now returns the current virtual time.
func (t *Task) Now() time.Duration { return time.Duration(t.p.Now()) }

// Spawn starts fn as a simulated task. It runs when the simulation
// runs.
func (s *Simulation) Spawn(name string, fn func(t *Task)) {
	s.eng.Go(name, func(p *sim.Proc) { fn(&Task{p: p}) })
}

// ---- Functions ----

// Function describes a serverless function to the platform: its unique
// key (client account + name), its MiniJS source, and — for the Linux
// container baseline, which does not interpret MiniJS — its modeled
// CPU and IO demands.
type Function = workload.Spec

// NOP returns the i-th logically unique NOP JavaScript function, the
// workload of the microbenchmarks and throughput experiments.
func NOP(i int) Function { return workload.NOPSpec(i) }

// CPUBound returns a function burning ms milliseconds of compute.
func CPUBound(key string, ms int) Function { return workload.CPUSpec(key, ms) }

// IOBound returns a function blocking on an external HTTP endpoint.
func IOBound(key, url string, block time.Duration) Function {
	return workload.IOSpec(key, url, block)
}

// NOPSource is the single-line NOP function source.
const NOPSource = workload.NOPSource

// ---- Compute node ----

// NodeConfig parameterizes a SEUSS compute node.
type NodeConfig = core.Config

// NodeDefaults returns the paper's node configuration: 16 cores, 88 GB
// memory, network and interpreter anticipatory optimizations enabled.
func NodeDefaults() NodeConfig { return core.DefaultConfig() }

// NewEntropySource returns a concurrency-safe deploy-entropy source
// seeded from the process boot generation, for NodeConfig.Entropy: a
// live daemon's clones then diverge across binary restarts too, not
// just within one process. Leave Entropy nil for replayable runs —
// divergence between clones is guaranteed either way by the deploy
// generation (DESIGN.md §14).
func NewEntropySource() func() uint64 {
	return entropy.NewSharedSource(entropy.BootGeneration())
}

// Node is a SEUSS OS compute node: snapshot cache, UC cache, and the
// cold/warm/hot invocation paths.
type Node struct {
	sim  *Simulation
	node *core.Node
}

// NewNode boots a node: unikernel + interpreter + invocation driver,
// anticipatory optimizations per the config, base runtime snapshot
// captured and cached.
func (s *Simulation) NewNode(cfg NodeConfig) (*Node, error) {
	n, err := core.NewNode(s.eng, cfg)
	if err != nil {
		return nil, err
	}
	return &Node{sim: s, node: n}, nil
}

// Invocation is the result of one function invocation.
type Invocation struct {
	// RequestID is the invocation's process-unique request ID; the
	// node's trace carries it on the matching invoke span, so a result
	// correlates with its timeline events.
	RequestID uint64
	// Path is "cold", "warm", "hot", or "lukewarm" (a disk-tier
	// restore that skipped interpreter replay).
	Path string
	// Output is the driver's JSON response.
	Output string
	// Latency is the node-side service time in virtual time.
	Latency time.Duration
}

// Invoke runs a function on the node's default runtime from within a
// simulated task.
func (n *Node) Invoke(t *Task, key, source, args string) (Invocation, error) {
	return n.InvokeRuntime(t, "", key, source, args)
}

// InvokeRuntime runs a function on a specific interpreter runtime
// ("nodejs", "python"; "" = the node's default). The runtime must be
// listed in NodeConfig.Runtimes.
func (n *Node) InvokeRuntime(t *Task, runtime, key, source, args string) (Invocation, error) {
	res, err := n.node.Invoke(t.p, core.Request{Key: key, Source: source, Args: args, Runtime: runtime})
	if err != nil {
		return Invocation{}, err
	}
	return Invocation{RequestID: res.ID, Path: res.Path.String(), Output: res.Output, Latency: res.Latency}, nil
}

// InvokeSync is a convenience for sequential use: it spawns a task for
// the invocation and runs the simulation until it completes.
func (n *Node) InvokeSync(key, source, args string) (Invocation, error) {
	var inv Invocation
	var err error
	n.sim.Spawn("invoke:"+key, func(t *Task) {
		inv, err = n.Invoke(t, key, source, args)
	})
	n.sim.Run()
	return inv, err
}

// NodeStats reports the node's counters.
type NodeStats struct {
	Cold, Warm, Hot   int64
	Lukewarm          int64
	Errors            int64
	UCsDeployed       int64
	UCsReclaimed      int64
	SnapshotsCaptured int64
	SnapshotsEvicted  int64
	CachedSnapshots   int
	IdleUCs           int
	MemoryUsedBytes   int64
	// Snapshot disk-tier traffic: lookups against the store, evictions
	// demoted to disk, stacks restored from it (prewarms are restores
	// done ahead of any request, at boot or via Prewarm).
	TierHits           int64
	TierMisses         int64
	SnapshotsDemoted   int64
	SnapshotsPromoted  int64
	SnapshotsPrewarmed int64
	// Lifecycle-policy activity: keep-alive expirations (idle UCs
	// destroyed plus lineages scaled to zero), predicted prewarms that
	// promoted, predictions that missed (tier no longer held the
	// lineage), and fault-injected misfire promotions.
	PolicyExpirations     int64
	PolicyPrewarms        int64
	PolicyPrewarmMisses   int64
	PolicyPrewarmMisfires int64
	// WorkingSet is the lukewarm record/replay ledger: sidecar records
	// written, drift-merged, and dropped corrupt, plus pages
	// bulk-prefetched and how well records covered real invocations.
	WorkingSet WorkingSetStats
	// Robustness is the failure-containment ledger: crashes contained,
	// deadlines enforced, pressure degradations taken.
	Robustness metrics.Robustness
}

// WorkingSetStats reports working-set record/replay activity on the
// lukewarm path.
type WorkingSetStats struct {
	Recorded        int64 // records persisted on first restore
	Merged          int64 // records union-merged after coverage drift
	Corrupt         int64 // records dropped for failing decode
	PrefetchedPages int64 // pages bulk-mapped before resume
	CoverageHits    int64 // touched pages a record covered
	CoverageMisses  int64 // touched pages a record missed
}

// workingSetOf maps a core node's counters onto the working-set ledger.
func workingSetOf(st core.Stats) WorkingSetStats {
	return WorkingSetStats{
		Recorded:        st.WSRecorded,
		Merged:          st.WSMerged,
		Corrupt:         st.WSCorrupt,
		PrefetchedPages: st.WSPrefetchedPages,
		CoverageHits:    st.WSCoverageHits,
		CoverageMisses:  st.WSCoverageMisses,
	}
}

// robustnessOf maps a core node's counters onto the metrics ledger.
func robustnessOf(st core.Stats) metrics.Robustness {
	return metrics.Robustness{
		UCCrashes:                 st.UCCrashes,
		DeadlinesExceeded:         st.DeadlinesExceeded,
		PressureIdleReclaims:      st.PressureIdleReclaims,
		PressureSnapshotEvictions: st.PressureSnapshotEvictions,
		PressureColdFallbacks:     st.PressureColdFallbacks,
		FaultsInjected:            st.FaultsInjected,
	}
}

// Stats returns current counters.
func (n *Node) Stats() NodeStats {
	st := n.node.Stats()
	return NodeStats{
		Cold: st.Cold, Warm: st.Warm, Hot: st.Hot,
		Lukewarm:           st.Lukewarm,
		Errors:             st.Errors,
		UCsDeployed:        st.UCsDeployed,
		UCsReclaimed:       st.UCsReclaimed,
		SnapshotsCaptured:  st.SnapshotsCaptured,
		SnapshotsEvicted:   st.SnapshotsEvicted,
		CachedSnapshots:    n.node.CachedSnapshots(),
		IdleUCs:            n.node.IdleUCs(),
		MemoryUsedBytes:    n.node.MemStats().BytesInUse,
		TierHits:           st.TierHits,
		TierMisses:         st.TierMisses,
		SnapshotsDemoted:      st.SnapshotsDemoted,
		SnapshotsPromoted:     st.SnapshotsPromoted,
		SnapshotsPrewarmed:    st.SnapshotsPrewarmed,
		PolicyExpirations:     st.PolicyExpirations,
		PolicyPrewarms:        st.PolicyPrewarms,
		PolicyPrewarmMisses:   st.PolicyPrewarmMisses,
		PolicyPrewarmMisfires: st.PolicyPrewarmMisfires,
		WorkingSet:            workingSetOf(st),
		Robustness:            robustnessOf(st),
	}
}

// PolicyTick runs one lifecycle-reaper pass over the node at the
// current virtual instant: idle UCs past their keep-alive are
// destroyed, idle lineages past their snapshot window scale to zero
// (demote to the disk tier), and predicted recurrences prewarm back.
// A no-op without NodeConfig.Policy. Drive it from a Spawned task that
// sleeps between passes.
func (n *Node) PolicyTick(t *Task) LifecycleTickStats {
	return n.node.PolicyTick(t.p)
}

// Core exposes the underlying node for advanced use (experiments,
// ablations).
func (n *Node) Core() *core.Node { return n.node }

// ---- Sharded node pool ----

// PoolConfig parameterizes a sharded node pool.
type PoolConfig struct {
	// Shards is the shard count (default: the host's CPU count).
	Shards int
	// Node configures every shard identically; MemoryBytes is the
	// pool-wide budget, divided evenly across shards.
	Node NodeConfig
	// DisableWorkStealing pins each function to its hash-owner shard
	// (exactly reproducible per-shard sequences, no overflow path).
	DisableWorkStealing bool
	// FaultSeed / FaultRate enable deterministic fault injection: each
	// registered fault point fires with probability FaultRate, decided
	// by a per-shard injector derived from FaultSeed. Rate 0 disables
	// injection entirely (zero overhead).
	FaultSeed int64
	FaultRate float64
	// BreakerThreshold is the consecutive contained failures that open
	// a shard's circuit breaker (0 = default 3, -1 disables).
	BreakerThreshold int
	// BreakerProbeAfter is the diverted requests an open breaker
	// absorbs before probing half-open (0 = default 4).
	BreakerProbeAfter int
}

// FaultPoint is one registered fault-injection point: its name (the
// value fault schedules and traces use) and what firing it does.
type FaultPoint struct {
	Point       string
	Description string
}

// FaultPoints lists every registered fault-injection point in sorted
// order with its registry description — the roster behind FaultRate
// injection and the CI fault matrix. Front doors surface it so
// operators can see what a given seed/rate can inject.
func FaultPoints() []FaultPoint {
	pts := fault.Points()
	out := make([]FaultPoint, len(pts))
	for i, pt := range pts {
		out[i] = FaultPoint{Point: string(pt), Description: fault.Describe(pt)}
	}
	return out
}

// NodePool is a shared-nothing pool of compute shards behind one front
// door. Each shard is an independent (engine, memory store, node)
// triple hydrated from a single encoded base-runtime snapshot, owned by
// its own goroutine — so InvokeSync is safe to call from any number of
// goroutines concurrently, and a multicore host actually runs
// multicore. Requests route to shards by function-key hash (preserving
// hot/warm locality); a backed-up shard's requests overflow to a steal
// queue any idle shard may serve.
//
// Unlike Node, a NodePool is not bound to a Simulation: each shard owns
// a private virtual clock, and reported latencies are per-shard virtual
// time. Per-shard execution is deterministic; cross-shard ordering is
// not.
type NodePool struct {
	pool *shardpool.Pool
}

// NewNodePool hydrates and starts a pool. Call Close when done.
func NewNodePool(cfg PoolConfig) (*NodePool, error) {
	p, err := shardpool.New(shardpool.Config{
		Shards:              cfg.Shards,
		Node:                cfg.Node,
		DisableWorkStealing: cfg.DisableWorkStealing,
		Faults:              fault.Config{Seed: cfg.FaultSeed, Rate: cfg.FaultRate},
		BreakerThreshold:    cfg.BreakerThreshold,
		BreakerProbeAfter:   cfg.BreakerProbeAfter,
	})
	if err != nil {
		return nil, err
	}
	return &NodePool{pool: p}, nil
}

// PoolInvocation is one pool invocation's outcome.
type PoolInvocation struct {
	Invocation
	// Shard identifies the serving shard.
	Shard int
	// Stolen reports the request overflowed its owner shard.
	Stolen bool
}

// InvokeSync services one invocation. Safe for concurrent use.
func (p *NodePool) InvokeSync(key, source, args string) (PoolInvocation, error) {
	res, err := p.pool.InvokeSync(key, source, args)
	if err != nil {
		return PoolInvocation{}, err
	}
	return PoolInvocation{
		Invocation: Invocation{RequestID: res.RequestID, Path: res.Path.String(), Output: res.Output, Latency: res.Latency},
		Shard:      res.Shard,
		Stolen:     res.Stolen,
	}, nil
}

// InvokeRuntime services one invocation on a named interpreter runtime
// ("" = the pool's default). Safe for concurrent use.
func (p *NodePool) InvokeRuntime(runtime, key, source, args string) (PoolInvocation, error) {
	res, err := p.pool.Invoke(core.Request{Key: key, Source: source, Args: args, Runtime: runtime})
	if err != nil {
		return PoolInvocation{}, err
	}
	return PoolInvocation{
		Invocation: Invocation{RequestID: res.RequestID, Path: res.Path.String(), Output: res.Output, Latency: res.Latency},
		Shard:      res.Shard,
		Stolen:     res.Stolen,
	}, nil
}

// PoolStats aggregates node counters across every shard; each shard's
// contribution is snapshotted inside its owning goroutine, never
// mid-invocation.
type PoolStats struct {
	NodeStats
	// Stolen counts requests served off their owner shard.
	Stolen int64
	// Requeued counts requests a stalled shard pushed back to the
	// overflow queue; Stalls counts the injected stalls themselves.
	Requeued int64
	Stalls   int64
	// Breakers is each shard's circuit-breaker state, indexed by shard.
	Breakers []string
	// Shards is the per-shard breakdown.
	Shards []ShardStats
}

// ShardStats is one shard's consistent snapshot.
type ShardStats = shardpool.ShardStats

// Stats aggregates counters across the pool.
func (p *NodePool) Stats() (PoolStats, error) {
	st, err := p.pool.Stats()
	if err != nil {
		return PoolStats{}, err
	}
	rob := robustnessOf(st.Node)
	rob.BreakerTrips = st.BreakerTrips
	rob.Rerouted = st.Rerouted
	return PoolStats{
		NodeStats: NodeStats{
			Cold: st.Node.Cold, Warm: st.Node.Warm, Hot: st.Node.Hot,
			Lukewarm:           st.Node.Lukewarm,
			Errors:             st.Node.Errors,
			UCsDeployed:        st.Node.UCsDeployed,
			UCsReclaimed:       st.Node.UCsReclaimed,
			SnapshotsCaptured:  st.Node.SnapshotsCaptured,
			SnapshotsEvicted:   st.Node.SnapshotsEvicted,
			CachedSnapshots:    st.CachedSnapshots,
			IdleUCs:            st.IdleUCs,
			MemoryUsedBytes:    st.MemoryUsedBytes,
			TierHits:           st.Node.TierHits,
			TierMisses:         st.Node.TierMisses,
			SnapshotsDemoted:      st.Node.SnapshotsDemoted,
			SnapshotsPromoted:     st.Node.SnapshotsPromoted,
			SnapshotsPrewarmed:    st.Node.SnapshotsPrewarmed,
			PolicyExpirations:     st.Node.PolicyExpirations,
			PolicyPrewarms:        st.Node.PolicyPrewarms,
			PolicyPrewarmMisses:   st.Node.PolicyPrewarmMisses,
			PolicyPrewarmMisfires: st.Node.PolicyPrewarmMisfires,
			WorkingSet:            workingSetOf(st.Node),
			Robustness:            rob,
		},
		Stolen:   st.Stolen,
		Requeued: st.Requeued,
		Stalls:   st.Stalls,
		Breakers: p.pool.BreakerStates(),
		Shards:   st.Shards,
	}, nil
}

// Metrics returns the pool's merged metrics snapshot: per-shard
// lock-free recorders plus pool-level routing counters, aggregated at
// read time. Unlike Stats, the read never waits behind a busy shard.
// Render it with WriteMetricsText.
func (p *NodePool) Metrics() Metrics { return p.pool.Metrics() }

// Shards returns the shard count.
func (p *NodePool) Shards() int { return p.pool.Shards() }

// Prewarm promotes up to max snapshot stacks (0 = all) from the pool's
// snapshot store back into shard memory, most-recently-used first, so a
// restarted pool serves its hot lineages warm instead of lukewarm. It
// returns how many function lineages were restored; without a store it
// is a no-op.
func (p *NodePool) Prewarm(max int) (int, error) { return p.pool.Prewarm(max) }

// FlushSnapshots demotes every resident function snapshot on every
// shard to the pool's snapshot store and syncs its manifest — the
// graceful-drain counterpart to Prewarm. It returns how many snapshots
// were written; without a store it is a no-op.
func (p *NodePool) FlushSnapshots() (int, error) { return p.pool.FlushSnapshots() }

// SnapshotStore returns the disk tier shared by the pool's shards, or
// nil if the pool runs memory-only.
func (p *NodePool) SnapshotStore() *SnapshotStore { return p.pool.SnapStore() }

// PolicyTick advances every shard's virtual clock by advance and runs
// one lifecycle-reaper pass on each (see Node.PolicyTick), returning
// the aggregate. Drive it from a wall-clock ticker: invocations only
// advance a shard's virtual clock by their own latencies, so idle time
// must be modelled explicitly for keep-alive windows to lapse. A
// no-op without PoolConfig.Node.Policy.
func (p *NodePool) PolicyTick(advance time.Duration) (LifecycleTickStats, error) {
	return p.pool.PolicyTick(advance)
}

// Pool exposes the underlying shard pool for advanced use.
func (p *NodePool) Pool() *shardpool.Pool { return p.pool }

// Close stops the shard goroutines; quiesce callers first.
func (p *NodePool) Close() { p.pool.Close() }

// ---- Lifecycle policy ----

// LifecyclePolicy decides per-function keep-alive, scale-to-zero, and
// predictive prewarm. Attach one via NodeConfig.Policy (each shard or
// cluster member gets a private clone) and drive the reaper with
// Node.PolicyTick / NodePool.PolicyTick. Implementations: NoKeepAlive
// (scale to zero immediately), FixedKeepAlive (one fixed window for
// everything, the classic 10-minute baseline), Hybrid (per-function
// inter-arrival histograms choose both the window and a prewarm
// instant).
type LifecyclePolicy = policy.Policy

// NoKeepAlive scales every function to zero the moment it goes idle.
type NoKeepAlive = policy.NoKeepAlive

// FixedKeepAlive keeps every idle function alive for one fixed window.
type FixedKeepAlive = policy.FixedKeepAlive

// HybridPolicy is the histogram-driven adaptive policy.
type HybridPolicy = policy.Hybrid

// LifecycleTickStats summarizes one reaper pass.
type LifecycleTickStats = core.TickStats

// NewLifecyclePolicy builds a policy from its flag spelling: "none",
// "fixed", or "hybrid". keepalive overrides the fixed window (or the
// hybrid policy's maximum); 0 keeps the default. An empty name returns
// nil (lifecycle management disabled).
func NewLifecyclePolicy(name string, keepalive time.Duration) (LifecyclePolicy, error) {
	return policy.New(name, keepalive)
}

// NewHybridPolicy returns the adaptive policy at its defaults.
func NewHybridPolicy() *HybridPolicy { return policy.NewHybrid() }

// ---- Snapshot disk tier ----

// SnapshotStore is the content-addressed on-disk snapshot tier.
// Evicted snapshot stacks demote into it instead of being destroyed;
// later invocations of the same function promote them back (the
// "lukewarm" path — slower than warm, far faster than cold), and a
// restarted process prewarms from it. Entries are CRC-verified on read,
// written atomically, and bounded by a byte-capacity LRU whose
// evictions cascade through snapshot-stack dependencies. Safe for
// concurrent use; one store may back every shard of a pool.
type SnapshotStore = snapstore.Store

// SnapshotStoreStats is a store's counters: tier hits/misses, puts,
// evictions, corrupt entries dropped, and current entry/byte footprint.
type SnapshotStoreStats = snapstore.Stats

// OpenSnapshotStore opens (creating if absent) a snapshot store rooted
// at dir, recovering from any earlier crash: partial temp files are
// deleted, orphaned snapshot files are re-adopted, corrupt ones are
// dropped. capBytes bounds the store (<0 = unlimited, 0 = reject all
// writes). Attach it via NodeConfig.SnapStore.
func OpenSnapshotStore(dir string, capBytes int64) (*SnapshotStore, error) {
	return snapstore.Open(dir, capBytes)
}

// ---- Platform (OpenWhisk-like cluster) ----

// Cluster is the full FaaS platform: control plane plus one compute
// backend (SEUSS through the shim, or the Linux container invoker).
type Cluster struct {
	sim     *Simulation
	cluster *faas.Cluster
}

// NewSeussCluster assembles the platform over a SEUSS node.
func (s *Simulation) NewSeussCluster(cfg NodeConfig) (*Cluster, error) {
	n, err := core.NewNode(s.eng, cfg)
	if err != nil {
		return nil, err
	}
	return &Cluster{sim: s, cluster: faas.NewCluster(s.eng, faas.NewSeussBackend(n))}, nil
}

// NewSeussPoolCluster assembles the platform over a sharded node pool:
// the same control plane and shim front door, but compute fans out
// across shared-nothing shards. The caller owns the pool (and its
// Close); see NodePool for the determinism contract at the boundary.
func (s *Simulation) NewSeussPoolCluster(pool *NodePool) *Cluster {
	return &Cluster{sim: s, cluster: faas.NewCluster(s.eng, faas.NewSeussPoolBackend(s.eng, pool.pool))}
}

// NewSeussDistCluster assembles the platform over a DR-SEUSS
// multi-node deployment: the same control plane and shim front door,
// with the scheduler placing each invocation by snapshot locality.
// The caller keeps the DistCluster handle for stats and holders.
func (s *Simulation) NewSeussDistCluster(d *DistCluster) *Cluster {
	return &Cluster{sim: s, cluster: faas.NewCluster(s.eng, faas.NewSeussDistBackend(s.eng, d.c))}
}

// LinuxConfig parameterizes the stock OpenWhisk Linux backend.
type LinuxConfig = faas.LinuxConfig

// NewLinuxCluster assembles the platform over the Linux container
// invoker.
func (s *Simulation) NewLinuxCluster(cfg LinuxConfig) *Cluster {
	return &Cluster{sim: s, cluster: faas.NewCluster(s.eng, faas.NewLinuxBackend(s.eng, cfg))}
}

// Invoke issues one synchronous platform request from a task.
func (c *Cluster) Invoke(t *Task, fn Function, args string) error {
	return c.cluster.Invoke(t.p, fn, args)
}

// Backend returns the backend's name ("seuss", "seuss-pool",
// "seuss-dist", or "linux").
func (c *Cluster) Backend() string { return c.cluster.Backend().Name() }

// Platform exposes the underlying cluster for experiment harnesses.
func (c *Cluster) Platform() *faas.Cluster { return c.cluster }

// ---- Benchmark front door ----

// Trial is the paper's load-generation benchmark: N invocations over a
// set of functions, issued by C closed-loop workers in a pre-computed
// random order.
type Trial = workload.Trial

// TrialResult is a trial's outcome.
type TrialResult = workload.TrialResult

// RunTrial executes a trial against the cluster.
func (c *Cluster) RunTrial(t Trial) TrialResult {
	return t.Run(c.sim.eng, c.cluster)
}

// Burst is the §7 burst-resiliency experiment configuration.
type Burst = workload.Burst

// Timeline is the per-request scatter data of the burst figures.
type Timeline = metrics.Timeline

// RunBurst executes a burst experiment against the cluster.
func (c *Cluster) RunBurst(b Burst) *Timeline {
	return b.Run(c.sim.eng, c.cluster)
}

// Summarize computes latency percentiles (Figure 5's quantiles).
func Summarize(samples []time.Duration) metrics.Summary {
	return metrics.Summarize(samples)
}

// ---- DR-SEUSS (distributed snapshot cache, the paper's §9) ----

// DistPolicy selects how the distributed cache exploits remote holders.
type DistPolicy = cluster.Policy

// Distributed cache policies.
const (
	// PolicyRoute forwards requests to a snapshot holder.
	PolicyRoute = cluster.PolicyRoute
	// PolicyMigrate replicates snapshot diffs across the fabric.
	PolicyMigrate = cluster.PolicyMigrate
)

// DistConfig parameterizes a DR-SEUSS deployment.
type DistConfig = cluster.Config

// DistStats reports distributed-cache behavior.
type DistStats = cluster.Stats

// Placer decides where each invocation runs; plug one into
// DistConfig.Placer to swap scheduling policies. Placers are
// single-writer — the cluster serializes placement decisions.
type Placer = sched.Placer

// LocalityPlacer is the default policy: route to the least-loaded
// snapshot holder, fall back to lukewarm tier holders, and — once
// every holder is saturated past Slack — replicate by fetching only
// the missing layers over the fabric (or migrating the whole diff
// when Replicate is set without a fabric).
type LocalityPlacer = sched.LocalityPlacer

// LeastLoadedPlacer ignores snapshot locality entirely — the
// ablation baseline for the locality experiments.
type LeastLoadedPlacer = sched.LeastLoadedPlacer

// DistCluster is a multi-node SEUSS deployment with a global snapshot
// directory: a function is cold at most once per cluster.
type DistCluster struct {
	sim *Simulation
	c   *cluster.Cluster
}

// NewDistCluster boots a DR-SEUSS deployment.
func (s *Simulation) NewDistCluster(cfg DistConfig) (*DistCluster, error) {
	c, err := cluster.New(s.eng, cfg)
	if err != nil {
		return nil, err
	}
	return &DistCluster{sim: s, c: c}, nil
}

// Invoke runs a function somewhere in the cluster, returning the result
// and the serving node's ID.
func (d *DistCluster) Invoke(t *Task, key, source, args string) (Invocation, int, error) {
	res, node, err := d.c.Invoke(t.p, core.Request{Key: key, Source: source, Args: args})
	if err != nil {
		return Invocation{}, node, err
	}
	return Invocation{Path: res.Path.String(), Output: res.Output, Latency: res.Latency}, node, nil
}

// InvokeSync is the sequential convenience form.
func (d *DistCluster) InvokeSync(key, source, args string) (Invocation, int, error) {
	var inv Invocation
	var node int
	var err error
	d.sim.Spawn("dist:"+key, func(t *Task) {
		inv, node, err = d.Invoke(t, key, source, args)
	})
	d.sim.Run()
	return inv, node, err
}

// Stats returns cluster counters.
func (d *DistCluster) Stats() DistStats { return d.c.Stats() }

// Holders returns which nodes hold a function's snapshot.
func (d *DistCluster) Holders(key string) []int { return d.c.Holders(key) }

// Nodes returns the member count.
func (d *DistCluster) Nodes() int { return len(d.c.Members()) }

// DistMemberState is one member's lifecycle state: runtime ground truth
// (Up, Partitioned) plus the heartbeat-driven belief recorded in the
// scheduler view (State: "alive"/"suspect"/"dead", Missed rounds).
type DistMemberState = cluster.MemberInfo

// MemberStates reports every member's lifecycle state.
func (d *DistCluster) MemberStates() []DistMemberState { return d.c.MemberStates() }

// CrashMember kills a member: resident UCs and memory-tier snapshots
// are lost, its disk tier survives but is offline until restart, and
// in-flight invocations on it fail over. Returns false if the member
// was already down. (Fault-injection hook; the member-crash fault point
// drives the same path.)
func (d *DistCluster) CrashMember(id int) bool { return d.c.Crash(id) }

// RestartMember rebuilds a crashed member over its surviving disk tier
// and rejoins it: fresh RAM, a full manifest resync, and a disk-tier
// prewarm (unless the cluster was configured RejoinLazy). Runs the
// rejoin on the simulation clock.
func (d *DistCluster) RestartMember(id int) error {
	var err error
	d.sim.Spawn(fmt.Sprintf("restart:%d", id), func(t *Task) {
		err = d.c.Restart(t.p, id)
	})
	d.sim.Run()
	return err
}

// PartitionMember isolates a member: it keeps running but is reachable
// by no one, so heartbeats stop landing and placements skip it once
// suspected. Returns false if the member is down or already
// partitioned.
func (d *DistCluster) PartitionMember(id int) bool { return d.c.Partition(id) }

// HealMember reconnects a partitioned member and resyncs its manifest.
// Returns false if the member is not partitioned.
func (d *DistCluster) HealMember(id int) bool { return d.c.Heal(id) }

// ---- Metrics ----

// Metrics is a point-in-time reading of the pre-registered counters
// and latency histograms: invocations by cold/warm/hot path, cache
// hit/miss pairs (snapshot stack, idle UCs, deploy kits), UC
// lifecycle, containment, routing, and per-path latency histograms.
type Metrics = metrics.Snapshot

// MetricsRecorder is the lock-free collection point metrics flow into:
// a fixed array of atomics, nil-safe, allocation-free to record into.
// Attach one via NodeConfig.Metrics on a standalone node (a NodePool
// wires its own, one per shard) and read it with its Snapshot method.
type MetricsRecorder = metrics.Recorder

// NewMetricsRecorder returns an empty recorder.
func NewMetricsRecorder() *MetricsRecorder { return metrics.NewRecorder() }

// WriteMetricsText renders a metrics snapshot in Prometheus text
// exposition format (version 0.0.4) — the payload cmd/seuss-node
// serves at /metrics.
func WriteMetricsText(w io.Writer, m Metrics) error {
	return metrics.WritePrometheus(w, m)
}

// ---- Tracing ----

// Trace records a node's structured event timeline; export it as JSON
// lines or Chrome trace-event format (chrome://tracing / Perfetto).
type Trace = trace.Tracer

// NewTrace returns a trace recorder retaining at most max events
// (0 = unlimited). Attach it via NodeConfig.Tracer.
func NewTrace(max int) *Trace { return trace.New(max) }

// InvokeAsync submits a non-blocking platform invocation (OpenWhisk's
// async activations) and returns its activation ID.
func (c *Cluster) InvokeAsync(t *Task, fn Function, args string) int64 {
	return c.cluster.InvokeAsync(t.p, fn, args)
}

// WaitActivation blocks the task until the activation completes and
// reports whether it succeeded; false is also returned for unknown IDs.
func (c *Cluster) WaitActivation(t *Task, id int64) bool {
	a := c.cluster.WaitActivation(t.p, id)
	return a != nil && a.Err == nil
}
