package seuss_test

import (
	"fmt"
	"log"

	"seuss"
)

// The basic flow: boot a node, invoke a function, watch the path
// progress from cold to hot as the node caches state.
func Example() {
	sim := seuss.New()
	node, err := sim.NewNode(seuss.NodeDefaults())
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		inv, err := node.InvokeSync("docs/hello",
			`function main(args) { return {n: args.n * 2}; }`,
			`{"n": 21}`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(inv.Path, inv.Output)
	}
	// Output:
	// cold {"ok":true,"result":{"n":42},"seq":1}
	// hot {"ok":true,"result":{"n":42},"seq":2}
	// hot {"ok":true,"result":{"n":42},"seq":3}
}

// Concurrent invocations run as simulated tasks; the simulation's
// virtual clock orders everything deterministically.
func ExampleSimulation_Spawn() {
	sim := seuss.New()
	node, err := sim.NewNode(seuss.NodeDefaults())
	if err != nil {
		log.Fatal(err)
	}
	// Prime the cache with one cold invocation.
	if _, err := node.InvokeSync("docs/fn", `function main(args) { return {}; }`, `{}`); err != nil {
		log.Fatal(err)
	}
	results := make([]string, 2)
	for i := 0; i < 2; i++ {
		i := i
		sim.Spawn("client", func(t *seuss.Task) {
			inv, err := node.Invoke(t, "docs/fn",
				`function main(args) { return {}; }`, `{}`)
			if err != nil {
				log.Fatal(err)
			}
			results[i] = inv.Path
		})
	}
	sim.Run()
	// One request reuses the cached idle UC (hot); the concurrent one
	// cannot, and deploys a fresh UC from the function snapshot (warm).
	fmt.Println(results[0], results[1])
	// Output:
	// hot warm
}

// The load-generation benchmark of the paper's §7, in miniature.
func ExampleCluster_RunTrial() {
	sim := seuss.New()
	cluster, err := sim.NewSeussCluster(seuss.NodeDefaults())
	if err != nil {
		log.Fatal(err)
	}
	fns := []seuss.Function{seuss.NOP(0), seuss.NOP(1)}
	res := cluster.RunTrial(seuss.Trial{N: 50, Fns: fns, C: 4, Seed: 1})
	fmt.Println(res.Completed, res.Errors)
	// Output:
	// 50 0
}
