// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus mechanism microbenchmarks and ablations of the
// design choices DESIGN.md calls out.
//
// Two kinds of numbers appear here:
//
//   - go-test ns/op measures the *real* cost of the reproduced
//     mechanisms (deploying a UC really is a root-node copy; capturing
//     a snapshot really walks the dirty list), and
//   - ReportMetric values labeled vms/op, req/s, etc. are *virtual*
//     time results — the quantities the paper's tables report.
package seuss

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"seuss/internal/cluster"
	"seuss/internal/core"
	"seuss/internal/costs"
	"seuss/internal/experiments"
	"seuss/internal/faas"
	"seuss/internal/libos"
	"seuss/internal/mem"
	"seuss/internal/sim"
	"seuss/internal/snapshot"
	"seuss/internal/snapstore"
	"seuss/internal/uc"
	"seuss/internal/workload"
)

func vms(b *testing.B, name string, d time.Duration) {
	b.ReportMetric(float64(d.Microseconds())/1000, name)
}

// buildRuntimeSnapshot performs system initialization with full AO.
func buildRuntimeSnapshot(b *testing.B, st *mem.Store) *snapshot.Snapshot {
	b.Helper()
	env := &libos.CountingEnv{}
	boot, err := uc.BootFresh(st, nil, env)
	if err != nil {
		b.Fatal(err)
	}
	if err := boot.Guest().Unikernel().WarmNetwork(); err != nil {
		b.Fatal(err)
	}
	if err := boot.Guest().WarmInterpreter(); err != nil {
		b.Fatal(err)
	}
	snap, err := boot.Capture("runtime", uc.TriggerPCDriverListen)
	if err != nil {
		b.Fatal(err)
	}
	return snap
}

// ---- Table 1: invocation latency and snapshot sizes ----

func BenchmarkTable1Invocations(b *testing.B) {
	for _, path := range []string{"cold", "warm", "hot"} {
		b.Run(path, func(b *testing.B) {
			st := mem.NewStore(0)
			runtime := buildRuntimeSnapshot(b, st)

			// Build the per-path starting state once.
			coldUC := func(env *libos.CountingEnv) *uc.UC {
				u, err := uc.Deploy(runtime, nil, env)
				if err != nil {
					b.Fatal(err)
				}
				if err := u.Guest().Connect(); err != nil {
					b.Fatal(err)
				}
				return u
			}
			var fnSnap *snapshot.Snapshot
			{
				env := &libos.CountingEnv{}
				u := coldUC(env)
				if err := u.Guest().ImportAndCompile(workload.NOPSource); err != nil {
					b.Fatal(err)
				}
				s, err := u.Capture("fn/nop", uc.TriggerPCPostCompile)
				if err != nil {
					b.Fatal(err)
				}
				fnSnap = s
			}

			var virt time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env := &libos.CountingEnv{}
				switch path {
				case "cold":
					u := coldUC(env)
					if err := u.Guest().ImportAndCompile(workload.NOPSource); err != nil {
						b.Fatal(err)
					}
					if _, err := u.Capture(fmt.Sprintf("fn/%d", i), uc.TriggerPCPostCompile); err != nil {
						b.Fatal(err)
					}
					if _, err := u.Guest().Invoke(`{}`); err != nil {
						b.Fatal(err)
					}
					virt += env.Elapsed()
					u.Destroy()
				case "warm":
					u, err := uc.Deploy(fnSnap, nil, env)
					if err != nil {
						b.Fatal(err)
					}
					if err := u.Guest().Connect(); err != nil {
						b.Fatal(err)
					}
					if _, err := u.Guest().Invoke(`{}`); err != nil {
						b.Fatal(err)
					}
					virt += env.Elapsed()
					u.Destroy()
				case "hot":
					u, err := uc.Deploy(fnSnap, nil, env)
					if err != nil {
						b.Fatal(err)
					}
					u.Guest().Connect()
					u.Guest().Invoke(`{}`) // first invocation warms the UC
					h0 := env.Elapsed()
					if _, err := u.Guest().Invoke(`{}`); err != nil {
						b.Fatal(err)
					}
					virt += env.Elapsed() - h0
					u.Destroy()
				}
			}
			b.StopTimer()
			vms(b, "vms/op", virt/time.Duration(b.N))
		})
	}
}

func BenchmarkTable1SnapshotSizes(b *testing.B) {
	var baseMB, fnMB float64
	for i := 0; i < b.N; i++ {
		st := mem.NewStore(0)
		runtime := buildRuntimeSnapshot(b, st)
		env := &libos.CountingEnv{}
		u, err := uc.Deploy(runtime, nil, env)
		if err != nil {
			b.Fatal(err)
		}
		u.Guest().Connect()
		if err := u.Guest().ImportAndCompile(workload.NOPSource); err != nil {
			b.Fatal(err)
		}
		fn, err := u.Capture("fn/nop", uc.TriggerPCPostCompile)
		if err != nil {
			b.Fatal(err)
		}
		baseMB = float64(runtime.DiffBytes()) / 1e6
		fnMB = float64(fn.DiffBytes()) / 1e6
	}
	b.ReportMetric(baseMB, "baseMB")
	b.ReportMetric(fnMB, "fnMB")
}

// ---- Table 2: AO ablation ----

func BenchmarkTable2AO(b *testing.B) {
	for _, lvl := range []struct {
		name     string
		net, itp bool
	}{{"no-ao", false, false}, {"network-ao", true, false}, {"full-ao", true, true}} {
		b.Run(lvl.name, func(b *testing.B) {
			var cold, warm time.Duration
			for i := 0; i < b.N; i++ {
				st := mem.NewStore(0)
				env := &libos.CountingEnv{}
				boot, err := uc.BootFresh(st, nil, env)
				if err != nil {
					b.Fatal(err)
				}
				if lvl.net {
					boot.Guest().Unikernel().WarmNetwork()
				}
				if lvl.itp {
					boot.Guest().WarmInterpreter()
				}
				runtime, err := boot.Capture("runtime", uc.TriggerPCDriverListen)
				if err != nil {
					b.Fatal(err)
				}
				coldEnv := &libos.CountingEnv{}
				u, err := uc.Deploy(runtime, nil, coldEnv)
				if err != nil {
					b.Fatal(err)
				}
				u.Guest().Connect()
				u.Guest().ImportAndCompile(workload.NOPSource)
				fn, err := u.Capture("fn", uc.TriggerPCPostCompile)
				if err != nil {
					b.Fatal(err)
				}
				u.Guest().Invoke(`{}`)
				cold = coldEnv.Elapsed()

				warmEnv := &libos.CountingEnv{}
				w, err := uc.Deploy(fn, nil, warmEnv)
				if err != nil {
					b.Fatal(err)
				}
				w.Guest().Connect()
				w.Guest().Invoke(`{}`)
				warm = warmEnv.Elapsed()
			}
			vms(b, "cold_vms", cold)
			vms(b, "warm_vms", warm)
		})
	}
}

// ---- Table 3: density and creation rates ----

func BenchmarkTable3Density(b *testing.B) {
	var density float64
	for i := 0; i < b.N; i++ {
		t3, err := experiments.RunTable3(300)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range t3.Rows {
			if row.Method == "SEUSS UC" {
				density = float64(row.Density)
			}
		}
	}
	b.ReportMetric(density, "UCs")
}

func BenchmarkTable3CreationRate(b *testing.B) {
	// UC deployment rate through the shim, 16-way (Table 3: 128.6/s).
	var rate float64
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		node, err := core.NewNode(eng, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		shim := sim.NewResource(eng, 1)
		created := 0
		for w := 0; w < costs.NodeCores; w++ {
			eng.Go("deploy", func(p *sim.Proc) {
				for j := 0; j < 20; j++ {
					shim.Acquire(p)
					p.Sleep(costs.ShimSerialize)
					shim.Release()
					if _, err := node.DeployIdle(p); err != nil {
						return
					}
					created++
				}
			})
		}
		eng.Run()
		rate = float64(created) / time.Duration(eng.Now()).Seconds()
	}
	b.ReportMetric(rate, "UCs/s")
}

// ---- Figure 4: platform throughput ----

func BenchmarkFigure4Throughput(b *testing.B) {
	for _, m := range []int{64, 1024, 8192} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			var seussRPS, linuxRPS float64
			for i := 0; i < b.N; i++ {
				f, err := experiments.RunFigure4(experiments.Figure4Config{
					SetSizes: []int{m}, N: 400, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				seussRPS = f.Points[0].SeussPerSec
				linuxRPS = f.Points[0].LinuxPerSec
			}
			b.ReportMetric(seussRPS, "seuss_rps")
			b.ReportMetric(linuxRPS, "linux_rps")
		})
	}
}

// ---- Figure 5: latency percentiles ----

func BenchmarkFigure5Latency(b *testing.B) {
	var p50, p99 float64
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFigure5([]int{64}, 300, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range f.Rows {
			if r.Backend == "seuss" {
				p50 = float64(r.Summary.P50.Microseconds()) / 1000
				p99 = float64(r.Summary.P99.Microseconds()) / 1000
			}
		}
	}
	b.ReportMetric(p50, "seuss_p50ms")
	b.ReportMetric(p99, "seuss_p99ms")
}

// ---- Figures 6-8: burst resiliency ----

func benchBurst(b *testing.B, period time.Duration) {
	var linuxErrs, seussErrs float64
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunBurst(experiments.BurstConfig{
			Period:  period,
			Bursts:  6,
			Threads: 64,
			Seed:    1,
		})
		if err != nil {
			b.Fatal(err)
		}
		linuxErrs = float64(f.Linux.BackgroundErrors + f.Linux.BurstErrors)
		seussErrs = float64(f.Seuss.BackgroundErrors + f.Seuss.BurstErrors)
	}
	b.ReportMetric(linuxErrs, "linux_errors")
	b.ReportMetric(seussErrs, "seuss_errors")
}

func BenchmarkFigure6Burst32(b *testing.B) { benchBurst(b, 32*time.Second) }
func BenchmarkFigure7Burst16(b *testing.B) { benchBurst(b, 16*time.Second) }
func BenchmarkFigure8Burst8(b *testing.B)  { benchBurst(b, 8*time.Second) }

// ---- Mechanism microbenchmarks (real wall time) ----

func BenchmarkUCDeployRealTime(b *testing.B) {
	st := mem.NewStore(0)
	runtime := buildRuntimeSnapshot(b, st)
	env := &libos.CountingEnv{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, err := uc.Deploy(runtime, nil, env)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		u.Destroy()
		b.StartTimer()
	}
}

func BenchmarkSnapshotCaptureRealTime(b *testing.B) {
	st := mem.NewStore(0)
	runtime := buildRuntimeSnapshot(b, st)
	env := &libos.CountingEnv{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		u, err := uc.Deploy(runtime, nil, env)
		if err != nil {
			b.Fatal(err)
		}
		u.Guest().Connect()
		u.Guest().ImportAndCompile(workload.NOPSource)
		b.StartTimer()
		if _, err := u.Capture(fmt.Sprintf("fn/%d", i), uc.TriggerPCPostCompile); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		u.Destroy()
		b.StartTimer()
	}
}

func BenchmarkPageFaultRealTime(b *testing.B) {
	st := mem.NewStore(0)
	runtime := buildRuntimeSnapshot(b, st)
	env := &libos.CountingEnv{}
	u, err := uc.Deploy(runtime, nil, env)
	if err != nil {
		b.Fatal(err)
	}
	space := u.Space()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Demand-zero fault on a fresh page.
		if err := space.Touch(uint64(0x4000_0000_0000) + uint64(i)*mem.PageSize); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLukewarmDeploy measures the real cost a disk-tier restore
// adds over a warm deploy: read the encoded diff from the
// content-addressed store (CRC-verified), decode it, graft it onto the
// resident base, and reattach the guest payload. Compare with
// BenchmarkColdRebuildRealTime — the path a restore skips — to see the
// lukewarm win in wall time.
func BenchmarkLukewarmDeploy(b *testing.B) {
	st := mem.NewStore(0)
	runtime := buildRuntimeSnapshot(b, st)
	env := &libos.CountingEnv{}
	u, err := uc.Deploy(runtime, nil, env)
	if err != nil {
		b.Fatal(err)
	}
	u.Guest().Connect()
	u.Guest().ImportAndCompile(workload.NOPSource)
	fnSnap, err := u.Capture("fn/bench", uc.TriggerPCPostCompile)
	if err != nil {
		b.Fatal(err)
	}
	store, err := snapstore.Open(b.TempDir(), -1)
	if err != nil {
		b.Fatal(err)
	}
	var wire bytes.Buffer
	if err := fnSnap.Export(&wire); err != nil {
		b.Fatal(err)
	}
	if err := store.Put("fn/bench", "runtime", wire.Bytes()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := store.Get("fn/bench")
		if err != nil {
			b.Fatal(err)
		}
		diff, err := snapshot.ImportBytes(data)
		if err != nil {
			b.Fatal(err)
		}
		snap, err := snapshot.Graft(diff, runtime)
		if err != nil {
			b.Fatal(err)
		}
		payload, err := uc.DecodePayload(diff.PayloadBytes)
		if err != nil {
			b.Fatal(err)
		}
		snap.SetPayload(payload)
		b.StopTimer()
		snap.Delete()
		b.StartTimer()
	}
}

// BenchmarkLukewarmPrefetched measures the promote a second lukewarm
// restore of a recorded lineage pays: read the encoded diff from the
// disk tier (cached descriptor, CRC-verified), load the working-set
// plan from its sidecar, and graft the diff onto the resident base in
// one fused decode+install pass (snapshot.GraftWire) — the same scope
// as BenchmarkLukewarmDeploy, on the recorded fast path. After this
// the snapshot deploys exactly like a warm one (DeployPrefetched bulk-
// maps the plan at the batched rate instead of taking the fault
// storm), so this promote is the entire premium a disk restore pays
// over warm. scripts/bench.sh gates the ratio against
// BenchmarkUCDeployRealTime (the warm deploy): the premium must stay
// within 2× warm speed.
func BenchmarkLukewarmPrefetched(b *testing.B) {
	st := mem.NewStore(0)
	runtime := buildRuntimeSnapshot(b, st)
	env := &libos.CountingEnv{}
	u, err := uc.Deploy(runtime, nil, env)
	if err != nil {
		b.Fatal(err)
	}
	u.Guest().Connect()
	u.Guest().ImportAndCompile(workload.NOPSource)
	fnSnap, err := u.Capture("fn/bench", uc.TriggerPCPostCompile)
	if err != nil {
		b.Fatal(err)
	}
	store, err := snapstore.Open(b.TempDir(), -1)
	if err != nil {
		b.Fatal(err)
	}
	var wire bytes.Buffer
	if err := fnSnap.Export(&wire); err != nil {
		b.Fatal(err)
	}
	if err := store.Put("fn/bench", "runtime", wire.Bytes()); err != nil {
		b.Fatal(err)
	}
	// Record the working set the way the node does: one on-demand
	// restore, harvest its dirty pages, persist the sidecar.
	{
		diff, err := snapshot.ImportBytes(wire.Bytes())
		if err != nil {
			b.Fatal(err)
		}
		snap, err := snapshot.GraftBulk(diff, runtime)
		if err != nil {
			b.Fatal(err)
		}
		payload, err := uc.DecodePayload(diff.PayloadBytes)
		if err != nil {
			b.Fatal(err)
		}
		snap.SetPayload(payload)
		probe, err := uc.Deploy(snap, nil, env)
		if err != nil {
			b.Fatal(err)
		}
		record, err := snapshot.EncodeWorkingSet(probe.Space().DirtyPages())
		if err != nil {
			b.Fatal(err)
		}
		if err := store.PutWorkingSet("fn/bench", record); err != nil {
			b.Fatal(err)
		}
		probe.Destroy()
		snap.Delete()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := store.Get("fn/bench")
		if err != nil {
			b.Fatal(err)
		}
		ws, ok := store.GetWorkingSetPages("fn/bench")
		if !ok {
			b.Fatal("no working set recorded")
		}
		snap, payloadBytes, err := snapshot.GraftWire(data, runtime)
		if err != nil {
			b.Fatal(err)
		}
		payload, err := uc.DecodePayload(payloadBytes)
		if err != nil {
			b.Fatal(err)
		}
		snap.SetPayload(payload)
		b.StopTimer()
		if len(ws) == 0 {
			b.Fatal("empty working set")
		}
		snap.Delete()
		b.StartTimer()
	}
	// The premapped deploy itself is covered by the prefetched-vs-warm
	// equivalence tests; one here proves the measured promote yields a
	// deployable snapshot with the recorded plan.
	verify := func() {
		data, _ := store.Get("fn/bench")
		ws, _ := store.GetWorkingSetPages("fn/bench")
		snap, payloadBytes, err := snapshot.GraftWire(data, runtime)
		if err != nil {
			b.Fatal(err)
		}
		payload, _ := uc.DecodePayload(payloadBytes)
		snap.SetPayload(payload)
		u2, prefetched, err := uc.DeployPrefetched(snap, nil, env, ws)
		if err != nil {
			b.Fatal(err)
		}
		if prefetched == 0 {
			b.Fatal("no pages prefetched")
		}
		u2.Destroy()
		snap.Delete()
	}
	b.StopTimer()
	verify()
	b.StartTimer()
}

// BenchmarkColdRebuildRealTime is the work a lukewarm restore replaces:
// deploy from the base runtime, connect, import and compile the user
// function, capture its snapshot.
func BenchmarkColdRebuildRealTime(b *testing.B) {
	st := mem.NewStore(0)
	runtime := buildRuntimeSnapshot(b, st)
	env := &libos.CountingEnv{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, err := uc.Deploy(runtime, nil, env)
		if err != nil {
			b.Fatal(err)
		}
		if err := u.Guest().Connect(); err != nil {
			b.Fatal(err)
		}
		if err := u.Guest().ImportAndCompile(workload.NOPSource); err != nil {
			b.Fatal(err)
		}
		snap, err := u.Capture(fmt.Sprintf("fn/%d", i), uc.TriggerPCPostCompile)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		u.Destroy()
		snap.Delete()
		b.StartTimer()
	}
}

func BenchmarkInterpreterNOP(b *testing.B) {
	st := mem.NewStore(0)
	runtime := buildRuntimeSnapshot(b, st)
	env := &libos.CountingEnv{}
	u, err := uc.Deploy(runtime, nil, env)
	if err != nil {
		b.Fatal(err)
	}
	u.Guest().Connect()
	u.Guest().ImportAndCompile(workload.NOPSource)
	u.Guest().Invoke(`{}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.Guest().Invoke(`{}`); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations ----

// BenchmarkAblationStackDepth shows deploy cost is independent of
// snapshot-stack depth: the shallow copy touches only the root node.
func BenchmarkAblationStackDepth(b *testing.B) {
	for _, depth := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			st := mem.NewStore(0)
			snap := buildRuntimeSnapshot(b, st)
			env := &libos.CountingEnv{}
			for d := 1; d < depth; d++ {
				u, err := uc.Deploy(snap, nil, env)
				if err != nil {
					b.Fatal(err)
				}
				u.Guest().Connect()
				u.Space().Touch(uint64(0x5000_0000_0000) + uint64(d)*mem.PageSize)
				next, err := u.Capture(fmt.Sprintf("layer/%d", d), uc.TriggerPCPostCompile)
				if err != nil {
					b.Fatal(err)
				}
				snap = next
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u, err := uc.Deploy(snap, nil, env)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				u.Destroy()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAblationPageFaultCost sweeps the modeled per-fault cost and
// reports warm-start latency: the knob AO's diff-shrinking leverages.
func BenchmarkAblationPageFaultCost(b *testing.B) {
	orig := costs.PageFault
	defer func() { costs.PageFault = orig }()
	for _, pf := range []time.Duration{500 * time.Nanosecond, 1500 * time.Nanosecond, 4 * time.Microsecond} {
		b.Run(pf.String(), func(b *testing.B) {
			costs.PageFault = pf
			var warm time.Duration
			for i := 0; i < b.N; i++ {
				st := mem.NewStore(0)
				runtime := buildRuntimeSnapshot(b, st)
				env := &libos.CountingEnv{}
				u, _ := uc.Deploy(runtime, nil, env)
				u.Guest().Connect()
				u.Guest().ImportAndCompile(workload.NOPSource)
				fn, err := u.Capture("fn", uc.TriggerPCPostCompile)
				if err != nil {
					b.Fatal(err)
				}
				wEnv := &libos.CountingEnv{}
				w, _ := uc.Deploy(fn, nil, wEnv)
				w.Guest().Connect()
				w.Guest().Invoke(`{}`)
				warm = wEnv.Elapsed()
			}
			vms(b, "warm_vms", warm)
		})
	}
}

// BenchmarkAblationBridgeEndpoints reports the bridge drop probability
// across endpoint counts — the Linux container cache's hard wall.
func BenchmarkAblationBridgeEndpoints(b *testing.B) {
	for _, n := range []int{512, 1024, 2048, 3000} {
		b.Run(fmt.Sprintf("endpoints=%d", n), func(b *testing.B) {
			var p float64
			for i := 0; i < b.N; i++ {
				eng := faas.NewLinuxBackend(sim.NewEngine(), faas.LinuxConfig{Seed: 1})
				bridge := eng.Bridge()
				for j := 0; j < n; j++ {
					bridge.Attach()
				}
				p = bridge.DropProbability()
			}
			b.ReportMetric(p*100, "drop%")
		})
	}
}

// BenchmarkAblationOOMThreshold sweeps the idle-UC reclaim threshold on
// a memory-tight node and reports reclaim counts.
func BenchmarkAblationOOMThreshold(b *testing.B) {
	for _, thr := range []float64{0.01, 0.05, 0.15} {
		b.Run(fmt.Sprintf("thr=%.2f", thr), func(b *testing.B) {
			var reclaimed float64
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				cfg := core.DefaultConfig()
				cfg.MemoryBytes = 170 << 20
				cfg.OOMThreshold = thr
				node, err := core.NewNode(eng, cfg)
				if err != nil {
					b.Fatal(err)
				}
				for f := 0; f < 20; f++ {
					req := core.Request{Key: fmt.Sprintf("fn%02d", f), Source: workload.NOPSource, Args: "{}"}
					eng.Go("client", func(p *sim.Proc) { node.Invoke(p, req) })
					eng.Run()
				}
				reclaimed = float64(node.Stats().UCsReclaimed)
			}
			b.ReportMetric(reclaimed, "reclaimed")
		})
	}
}

// BenchmarkAblationKSMScan runs a KSM-style dedup scan over a node
// that has cached several function snapshots: §5's claim that SEUSS's
// structural (snapshot-stack) sharing leaves retroactive deduplication
// little to find. Reported: duplicate bytes a KSM pass could still
// merge, against the total materialized bytes.
func BenchmarkAblationKSMScan(b *testing.B) {
	var dupMB, scannedMB float64
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		scanner := mem.NewScanner()
		cfg := core.DefaultConfig()
		node, err := core.NewNode(eng, cfg)
		if err != nil {
			b.Fatal(err)
		}
		node.Store().AttachScanner(scanner)
		for f := 0; f < 10; f++ {
			req := core.Request{
				Key:    fmt.Sprintf("user%02d/fn", f),
				Source: workload.NOPSource,
				Args:   "{}",
			}
			eng.Go("client", func(p *sim.Proc) {
				if _, err := node.Invoke(p, req); err != nil {
					b.Error(err)
				}
			})
			eng.Run()
		}
		stats := scanner.Scan()
		dupMB = float64(stats.DuplicateBytes) / 1e6
		scannedMB = float64(node.MemStats().BytesInUse) / 1e6
	}
	// A KSM pass over the whole node finds only the few content-bearing
	// duplicate pages (identical imported sources across tenants);
	// everything else is already shared structurally through snapshot
	// stacks or is an implicit zero page.
	b.ReportMetric(dupMB, "ksm_mergeable_MB")
	b.ReportMetric(scannedMB, "node_in_use_MB")
}

// BenchmarkClusterColdOnce measures DR-SEUSS (§9): with N nodes and a
// shared snapshot directory, a stream of unique functions goes cold
// once per cluster instead of once per node, and aggregate throughput
// scales with members.
func BenchmarkClusterColdOnce(b *testing.B) {
	for _, nodes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				cfg := cluster.Config{Nodes: nodes}
				cfg.NodeConfig = core.DefaultConfig()
				cfg.NodeConfig.Cores = 4
				cl, err := cluster.New(eng, cfg)
				if err != nil {
					b.Fatal(err)
				}
				queue := sim.NewQueue(eng)
				const total = 96
				for j := 0; j < total; j++ {
					queue.Put(core.Request{
						Key:    fmt.Sprintf("u%03d/fn", j),
						Source: workload.CPUBoundSource(40),
						Args:   "{}",
					})
				}
				queue.Close()
				for w := 0; w < 16; w++ {
					eng.Go("w", func(p *sim.Proc) {
						for {
							v, ok := queue.Get(p)
							if !ok {
								return
							}
							if _, _, err := cl.Invoke(p, v.(core.Request)); err != nil {
								b.Error(err)
								return
							}
						}
					})
				}
				eng.Run()
				rate = total / time.Duration(eng.Now()).Seconds()
			}
			b.ReportMetric(rate, "req/s")
		})
	}
}
